//! Transport-independent serving core: connection registry, request
//! execution against the sharded store, admission control and in-order
//! reply queues.
//!
//! [`ServerCore`] is single-threaded and owns the [`Store`]. Both
//! transports drive the same three entry points:
//!
//! 1. [`feed`](ServerCore::feed) — raw bytes from a connection are
//!    decoded, admitted and executed. Reads are answered immediately;
//!    writes become group-commit tickets and their replies are parked
//!    in the connection's ordered queue.
//! 2. [`flush`](ServerCore::flush) — drains the store's group-commit
//!    queue and resolves every parked write reply with its durable
//!    outcome.
//! 3. [`take_output`](ServerCore::take_output) — encodes the resolved
//!    prefix of a connection's reply queue. Replies never overtake each
//!    other: a BUSY rejection or read reply queued behind a parked write
//!    stays behind it until the write resolves.
//!
//! Admission control is two-level: a global budget on unresolved write
//! tickets (`max_inflight`) and a per-connection cap on queued replies
//! (`pipeline_per_conn`). Either limit exhausted yields an explicit
//! `-BUSY` reply — never a hang, never a dropped request.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use nob_metrics::{MetricKind, MetricsHub};
use nob_sim::{Nanos, SharedClock};
use nob_store::{Store, StoreOptions, Ticket};
use nob_trace::{EventClass, TraceCtx, TraceSink};
use noblsm::{ReadOptions, Result, ScanOptions, Snapshot, WriteBatch, WriteOptions};

use crate::proto::{BatchOp, Decoder, Frame, Request, RequestClass};

/// Configuration for [`ServerCore::open`].
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// The sharded store the server fronts.
    pub store: StoreOptions,
    /// Durability discipline applied to client writes (the Sync/Async
    /// axis of the paper's figures).
    pub write: WriteOptions,
    /// Global budget: unresolved write tickets across all connections.
    /// At the limit, further requests get `-BUSY` pushback.
    pub max_inflight: usize,
    /// Per-connection cap on queued (unsent) replies — the pipelining
    /// window a single client may keep open.
    pub pipeline_per_conn: usize,
    /// Hard cap on rows per SCAN page; client-requested limits are
    /// clamped down to it so one reply frame stays bounded.
    pub max_scan_page: usize,
    /// Cap on concurrently open scan cursors (each pins one snapshot per
    /// shard). At the limit, SCAN answers `-BUSY`.
    pub max_cursors: usize,
    /// Lease duration of a scan cursor on the virtual clock; a cursor not
    /// resumed within this window expires and releases its snapshots.
    /// Every resume renews the lease.
    pub cursor_ttl: Nanos,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            store: StoreOptions::default(),
            write: WriteOptions::default(),
            max_inflight: 1024,
            pipeline_per_conn: 128,
            max_scan_page: 1024,
            max_cursors: 1024,
            cursor_ttl: Nanos::from_secs(60),
        }
    }
}

/// Opaque connection handle issued by [`ServerCore::connect`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConnId(u64);

/// The serving node's replication role, enforced on the write path and
/// surfaced in `INFO`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReplRole {
    /// Not part of a replication pair (the default).
    #[default]
    Standalone,
    /// Accepting writes and shipping them to subscribers.
    Leader,
    /// Applying a leader's stream; write-class requests are rejected
    /// with `-READONLY` so clients redirect to the leader.
    Follower,
}

impl ReplRole {
    /// Stable lower-case name, as printed in `INFO`.
    pub fn name(self) -> &'static str {
        match self {
            ReplRole::Standalone => "standalone",
            ReplRole::Leader => "leader",
            ReplRole::Follower => "follower",
        }
    }
}

/// Replication posture the embedding layer (`nob-repl`) pushes into the
/// serving core: the role routes writes, the rest is reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReplStatus {
    /// This node's role.
    pub role: ReplRole,
    /// Current leadership epoch (0 while standalone).
    pub epoch: u64,
    /// Most recent commit→ack replication lag in nanoseconds (leaders),
    /// or applied staleness (followers).
    pub lag_nanos: u64,
    /// WAL records shipped to subscribers (leaders; 0 otherwise).
    pub shipped_records: u64,
    /// Highest subscriber-acknowledged sequence across shards (leaders).
    pub acked_seq: u64,
    /// WAL records applied from the leader's stream (followers).
    pub applied_records: u64,
}

/// What a parked write replies with once its ticket resolves.
#[derive(Debug, Clone, Copy)]
enum WriteReply {
    /// `+OK` (SET / DEL).
    Ok,
    /// `:n` (BATCH operation count).
    Count(i64),
}

/// One slot in a connection's ordered reply queue.
#[derive(Debug)]
enum PendingReply {
    /// Fully formed; may be encoded as soon as it reaches the front.
    Ready(Frame),
    /// Waiting on a group-commit ticket.
    Await { ticket: Ticket, start: Nanos, bytes: u64, reply: WriteReply, ctx: TraceCtx },
}

#[derive(Debug, Default)]
struct Conn {
    decoder: Decoder,
    replies: VecDeque<PendingReply>,
    /// Unresolved write tickets this connection holds.
    inflight: usize,
    /// Set after a frame-level protocol error: the error reply is queued,
    /// then the transport should close once output drains.
    poisoned: bool,
}

/// One open scan cursor: a lease on a pinned cross-shard snapshot plus
/// the position the next page resumes from.
#[derive(Debug)]
struct Cursor {
    /// One pinned snapshot per shard, released when the cursor closes.
    snaps: Vec<Snapshot>,
    /// Inclusive start key of the next page.
    resume: Vec<u8>,
    /// Exclusive end bound (`None` = to the last key).
    end: Option<Vec<u8>>,
    /// Rows per page (already clamped to `max_scan_page`).
    page: usize,
    /// Server-side key-prefix filter carried across pages.
    prefix: Option<Vec<u8>>,
    /// Pages reply with row counts instead of row payloads.
    count_only: bool,
    /// Lease expiry on the virtual clock; renewed by every resume.
    deadline: Nanos,
}

/// Shared monotone counters surfaced as `server.*` metrics.
#[derive(Debug, Default, Clone)]
struct Counters {
    requests_read: Arc<AtomicU64>,
    requests_write: Arc<AtomicU64>,
    requests_control: Arc<AtomicU64>,
    requests_scan: Arc<AtomicU64>,
    scan_rows: Arc<AtomicU64>,
    cursors_opened: Arc<AtomicU64>,
    cursors_expired: Arc<AtomicU64>,
    cursors_open: Arc<AtomicU64>,
    busy_rejections: Arc<AtomicU64>,
    readonly_rejections: Arc<AtomicU64>,
    protocol_errors: Arc<AtomicU64>,
    bytes_in: Arc<AtomicU64>,
    bytes_out: Arc<AtomicU64>,
    conns: Arc<AtomicU64>,
    inflight: Arc<AtomicU64>,
}

impl Counters {
    fn bump(&self, class: RequestClass) {
        let cell = match class {
            RequestClass::Read => &self.requests_read,
            RequestClass::Write => &self.requests_write,
            RequestClass::Control => &self.requests_control,
            RequestClass::Scan => &self.requests_scan,
        };
        cell.fetch_add(1, Ordering::Relaxed);
    }
}

/// The transport-independent serving core. See the module docs.
pub struct ServerCore {
    store: Store,
    wopts: WriteOptions,
    max_inflight: usize,
    pipeline_per_conn: usize,
    conns: BTreeMap<ConnId, Conn>,
    next_conn: u64,
    /// Unresolved write tickets across all connections.
    inflight: usize,
    max_scan_page: usize,
    max_cursors: usize,
    cursor_ttl: Nanos,
    /// Open scan cursors; ids start at 1 (0 on the wire = exhausted).
    cursors: BTreeMap<u64, Cursor>,
    next_cursor: u64,
    trace: Option<TraceSink>,
    counters: Counters,
    repl: ReplStatus,
}

impl ServerCore {
    /// Opens the underlying store and an empty connection registry.
    ///
    /// # Errors
    ///
    /// Propagates [`Store::open`] failures; rejects zero budgets as
    /// [`noblsm::Error::Usage`].
    pub fn open(opts: ServerOptions) -> Result<ServerCore> {
        if opts.max_inflight == 0 || opts.pipeline_per_conn == 0 {
            return Err(noblsm::Error::Usage(
                "max_inflight and pipeline_per_conn must be at least 1".into(),
            ));
        }
        if opts.max_scan_page == 0 || opts.max_cursors == 0 {
            return Err(noblsm::Error::Usage(
                "max_scan_page and max_cursors must be at least 1".into(),
            ));
        }
        Ok(ServerCore {
            store: Store::open(opts.store)?,
            wopts: opts.write,
            max_inflight: opts.max_inflight,
            pipeline_per_conn: opts.pipeline_per_conn,
            conns: BTreeMap::new(),
            next_conn: 0,
            inflight: 0,
            max_scan_page: opts.max_scan_page,
            max_cursors: opts.max_cursors,
            cursor_ttl: opts.cursor_ttl,
            cursors: BTreeMap::new(),
            next_cursor: 1,
            trace: None,
            counters: Counters::default(),
            repl: ReplStatus::default(),
        })
    }

    /// The replication posture last pushed by the embedding layer.
    pub fn repl_status(&self) -> ReplStatus {
        self.repl
    }

    /// Updates the replication posture. A [`ReplRole::Follower`] role
    /// makes every write-class request answer `-READONLY` from the next
    /// request on; in-flight writes already enqueued still resolve.
    pub fn set_repl_status(&mut self, status: ReplStatus) {
        self.repl = status;
    }

    /// The deployment's shared virtual clock.
    pub fn clock(&self) -> &SharedClock {
        self.store.clock()
    }

    /// Read access to the underlying store.
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// Mutable access to the underlying store (benches, tests).
    pub fn store_mut(&mut self) -> &mut Store {
        &mut self.store
    }

    /// Registers a new connection and returns its handle.
    pub fn connect(&mut self) -> ConnId {
        let id = ConnId(self.next_conn);
        self.next_conn += 1;
        self.conns.insert(id, Conn::default());
        self.counters.conns.store(self.conns.len() as u64, Ordering::Relaxed);
        id
    }

    /// Removes a connection. Its enqueued writes still commit (they are
    /// already in the group-commit queue) but their replies are dropped.
    pub fn disconnect(&mut self, id: ConnId) {
        if let Some(conn) = self.conns.remove(&id) {
            self.inflight -= conn.inflight;
            self.counters.inflight.store(self.inflight as u64, Ordering::Relaxed);
        }
        self.counters.conns.store(self.conns.len() as u64, Ordering::Relaxed);
    }

    /// Open connections.
    pub fn conn_count(&self) -> usize {
        self.conns.len()
    }

    /// Unresolved write tickets across all connections.
    pub fn inflight(&self) -> usize {
        self.inflight
    }

    /// Replies queued (resolved or not) on `id`.
    pub fn pending_replies(&self, id: ConnId) -> usize {
        self.conns.get(&id).map_or(0, |c| c.replies.len())
    }

    /// Whether `id` hit a frame-level protocol error and should be closed
    /// once its output drains.
    pub fn is_poisoned(&self, id: ConnId) -> bool {
        self.conns.get(&id).is_some_and(|c| c.poisoned)
    }

    /// Attaches a trace sink for `server_*` spans and forwards it to the
    /// store (group-commit and engine spans land in the same sink).
    pub fn set_trace_sink(&mut self, sink: TraceSink) {
        self.store.set_trace_sink(sink.clone());
        self.trace = Some(sink);
    }

    /// Registers the `server.*` counter/gauge family on `hub` and wires
    /// the store's per-shard gauges beneath the same hub.
    pub fn set_metrics_hub(&mut self, hub: &MetricsHub) {
        self.store.set_metrics_hub(hub);
        let scoped = hub.scoped("server.");
        let counters = [
            (
                "requests_read",
                "Read-class requests served (GET/MGET)",
                &self.counters.requests_read,
            ),
            (
                "requests_write",
                "Write-class requests admitted (SET/DEL/BATCH)",
                &self.counters.requests_write,
            ),
            (
                "requests_control",
                "Control requests served (PING/INFO)",
                &self.counters.requests_control,
            ),
            (
                "requests_scan",
                "Scan requests served (SCAN/SCAN NEXT)",
                &self.counters.requests_scan,
            ),
            ("scan_rows", "Rows returned across all scan pages", &self.counters.scan_rows),
            ("cursors_opened", "Scan cursors opened", &self.counters.cursors_opened),
            (
                "cursors_expired",
                "Scan cursors expired by the lease sweep",
                &self.counters.cursors_expired,
            ),
            (
                "busy_rejections",
                "Requests rejected with -BUSY by admission control",
                &self.counters.busy_rejections,
            ),
            (
                "readonly_rejections",
                "Write-class requests rejected with -READONLY on a follower",
                &self.counters.readonly_rejections,
            ),
            (
                "protocol_errors",
                "Frame-level protocol errors (connection poisoned)",
                &self.counters.protocol_errors,
            ),
            ("bytes_in", "Raw request bytes received", &self.counters.bytes_in),
            ("bytes_out", "Raw reply bytes sent", &self.counters.bytes_out),
        ];
        for (name, help, cell) in counters {
            let cell = Arc::clone(cell);
            scoped.register(MetricKind::Counter, name, help, move |_| {
                cell.load(Ordering::Relaxed) as f64
            });
        }
        let gauges = [
            ("conns", "Open connections", &self.counters.conns),
            (
                "inflight",
                "Unresolved write tickets across all connections",
                &self.counters.inflight,
            ),
            ("cursors_open", "Scan cursors currently open", &self.counters.cursors_open),
        ];
        for (name, help, cell) in gauges {
            let cell = Arc::clone(cell);
            scoped.register(MetricKind::Gauge, name, help, move |_| {
                cell.load(Ordering::Relaxed) as f64
            });
        }
    }

    /// Feeds raw transport bytes into `id`'s decoder and executes every
    /// complete request, in arrival order.
    ///
    /// # Errors
    ///
    /// Store/engine failures only. Protocol and request errors become
    /// in-band `-ERR` replies (frame-level ones additionally poison the
    /// connection).
    pub fn feed(&mut self, id: ConnId, bytes: &[u8]) -> Result<()> {
        self.counters.bytes_in.fetch_add(bytes.len() as u64, Ordering::Relaxed);
        let Some(conn) = self.conns.get_mut(&id) else {
            return Err(noblsm::Error::Usage("feed on unknown connection".into()));
        };
        if conn.poisoned {
            return Ok(());
        }
        conn.decoder.push(bytes);
        while let Some(conn) = self.conns.get_mut(&id) {
            match conn.decoder.next_frame() {
                Ok(Some(frame)) => match Request::parse(&frame) {
                    Ok(req) => self.execute(id, req)?,
                    // A malformed *request* in a well-formed frame is
                    // recoverable: the stream stays in sync.
                    Err(e) => self.push_ready(id, Frame::Error(format!("ERR {e}"))),
                },
                Ok(None) => break,
                Err(e) => {
                    self.counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    conn.poisoned = true;
                    self.push_ready(id, Frame::Error(format!("ERR {e}")));
                    break;
                }
            }
        }
        Ok(())
    }

    /// Drains the store's group-commit queue and resolves every parked
    /// write reply, emitting one `server_write` span per resolved ticket.
    ///
    /// # Errors
    ///
    /// Propagates engine failures from the drain.
    pub fn flush(&mut self) -> Result<()> {
        self.sweep_cursors();
        if self.store.pending() > 0 {
            self.store.drain()?;
        }
        for conn in self.conns.values_mut() {
            for slot in conn.replies.iter_mut() {
                let PendingReply::Await { ticket, start, bytes, reply, ctx } = *slot else {
                    continue;
                };
                let Some(durable) = self.store.outcome(ticket) else { continue };
                if let Some(t) = &self.trace {
                    t.emit_ctx(EventClass::ServerWrite, start, durable, bytes, ctx);
                }
                let frame = match reply {
                    WriteReply::Ok => Frame::ok(),
                    WriteReply::Count(n) => Frame::Integer(n),
                };
                *slot = PendingReply::Ready(frame);
                conn.inflight -= 1;
                self.inflight -= 1;
            }
        }
        self.counters.inflight.store(self.inflight as u64, Ordering::Relaxed);
        Ok(())
    }

    /// Encodes and removes the resolved prefix of `id`'s reply queue.
    /// Returns an empty buffer when the front reply is still awaiting its
    /// ticket (call [`flush`](ServerCore::flush) first).
    pub fn take_output(&mut self, id: ConnId) -> Vec<u8> {
        let Some(conn) = self.conns.get_mut(&id) else { return Vec::new() };
        let mut out = Vec::new();
        while let Some(PendingReply::Ready(_)) = conn.replies.front() {
            let Some(PendingReply::Ready(frame)) = conn.replies.pop_front() else {
                unreachable!("front() was Ready")
            };
            frame.encode(&mut out);
        }
        self.counters.bytes_out.fetch_add(out.len() as u64, Ordering::Relaxed);
        out
    }

    /// Whether `id` has replies queued that [`take_output`] cannot yet
    /// return (the front of the queue awaits a group-commit ticket).
    ///
    /// [`take_output`]: ServerCore::take_output
    pub fn output_blocked(&self, id: ConnId) -> bool {
        self.conns
            .get(&id)
            .and_then(|c| c.replies.front())
            .is_some_and(|r| matches!(r, PendingReply::Await { .. }))
    }

    /// The INFO payload: server counters, store group-commit stats and
    /// per-shard engine stats via [`Db::property`](noblsm::Db::property).
    pub fn info_text(&self) -> String {
        let c = &self.counters;
        let mut out = String::new();
        out.push_str("# server\n");
        out.push_str(&format!("conns:{}\n", self.conns.len()));
        out.push_str(&format!("inflight:{}\n", self.inflight));
        out.push_str(&format!("requests_read:{}\n", c.requests_read.load(Ordering::Relaxed)));
        out.push_str(&format!("requests_write:{}\n", c.requests_write.load(Ordering::Relaxed)));
        out.push_str(&format!("requests_control:{}\n", c.requests_control.load(Ordering::Relaxed)));
        out.push_str(&format!("requests_scan:{}\n", c.requests_scan.load(Ordering::Relaxed)));
        out.push_str(&format!("scan_rows:{}\n", c.scan_rows.load(Ordering::Relaxed)));
        out.push_str(&format!("cursors_open:{}\n", self.cursors.len()));
        out.push_str(&format!("cursors_opened:{}\n", c.cursors_opened.load(Ordering::Relaxed)));
        out.push_str(&format!("cursors_expired:{}\n", c.cursors_expired.load(Ordering::Relaxed)));
        out.push_str(&format!("busy_rejections:{}\n", c.busy_rejections.load(Ordering::Relaxed)));
        out.push_str(&format!(
            "readonly_rejections:{}\n",
            c.readonly_rejections.load(Ordering::Relaxed)
        ));
        out.push_str(&format!("protocol_errors:{}\n", c.protocol_errors.load(Ordering::Relaxed)));
        out.push_str("# replication\n");
        out.push_str(&format!("role:{}\n", self.repl.role.name()));
        out.push_str(&format!("epoch:{}\n", self.repl.epoch));
        out.push_str(&format!("lag_nanos:{}\n", self.repl.lag_nanos));
        out.push_str(&format!("shipped_records:{}\n", self.repl.shipped_records));
        out.push_str(&format!("acked_seq:{}\n", self.repl.acked_seq));
        out.push_str(&format!("applied_records:{}\n", self.repl.applied_records));
        let stats = self.store.stats();
        out.push_str("# store\n");
        out.push_str(&format!("shards:{}\n", self.store.shards()));
        let seqs: Vec<String> = self.store.shard_seqs().iter().map(|s| s.to_string()).collect();
        out.push_str(&format!("seqs:{}\n", seqs.join(",")));
        out.push_str(&format!("pending:{}\n", self.store.pending()));
        out.push_str(&format!("groups:{}\n", stats.groups));
        out.push_str(&format!("batches:{}\n", stats.batches));
        out.push_str(&format!("merged_bytes:{}\n", stats.merged_bytes));
        out.push_str(&format!("shipped_records:{}\n", stats.shipped_records));
        out.push_str("# compaction\n");
        let lanes: Vec<String> =
            self.store.compaction_lanes().iter().map(|n| n.to_string()).collect();
        out.push_str(&format!("lanes:{}\n", lanes.join(",")));
        let active: Vec<String> = (0..self.store.shards())
            .map(|i| self.store.shard_db(i).active_majors().to_string())
            .collect();
        out.push_str(&format!("active_majors:{}\n", active.join(",")));
        let debt: u64 =
            (0..self.store.shards()).map(|i| self.store.shard_db(i).compaction_debt_bytes()).sum();
        out.push_str(&format!("debt_bytes:{debt}\n"));
        let pressure = (0..self.store.shards())
            .map(|i| self.store.shard_db(i).l0_pressure())
            .fold(0.0f64, f64::max);
        out.push_str(&format!("max_pressure:{pressure:.2}\n"));
        for i in 0..self.store.shards() {
            if let Some(s) = self.store.shard_db(i).property("noblsm.stats") {
                out.push_str(&format!("# shard{i}\nnoblsm.stats:{s}\n"));
            }
        }
        out
    }

    fn push_ready(&mut self, id: ConnId, frame: Frame) {
        if let Some(conn) = self.conns.get_mut(&id) {
            conn.replies.push_back(PendingReply::Ready(frame));
        }
    }

    /// Admission + execution of one parsed request.
    fn execute(&mut self, id: ConnId, req: Request) -> Result<()> {
        let class = req.class();
        let queued = self.pending_replies(id);
        let over_pipeline = queued >= self.pipeline_per_conn;
        let over_budget = class == RequestClass::Write && self.inflight >= self.max_inflight;
        if over_pipeline || over_budget {
            self.counters.busy_rejections.fetch_add(1, Ordering::Relaxed);
            self.push_ready(id, Frame::busy());
            return Ok(());
        }
        if class == RequestClass::Write && self.repl.role == ReplRole::Follower {
            self.counters.readonly_rejections.fetch_add(1, Ordering::Relaxed);
            self.push_ready(
                id,
                Frame::Error("READONLY replica; route writes to the leader".into()),
            );
            return Ok(());
        }
        self.counters.bump(class);
        let bytes = req.payload_bytes();
        match req {
            Request::Get(key) => {
                let start = self.read_barrier()?;
                let root = self.begin_request();
                let got = self.store.get(&ReadOptions::default(), &key);
                self.end_request();
                let reply = match got? {
                    Some(v) => Frame::Bulk(v),
                    None => Frame::Nil,
                };
                self.emit(EventClass::ServerRead, start, bytes, root);
                self.push_ready(id, reply);
            }
            Request::MGet(keys) => {
                let start = self.read_barrier()?;
                let root = self.begin_request();
                let mut items = Vec::with_capacity(keys.len());
                let mut failed = None;
                for key in &keys {
                    match self.store.get(&ReadOptions::default(), key) {
                        Ok(Some(v)) => items.push(Frame::Bulk(v)),
                        Ok(None) => items.push(Frame::Nil),
                        Err(e) => {
                            failed = Some(e);
                            break;
                        }
                    }
                }
                self.end_request();
                if let Some(e) = failed {
                    return Err(e);
                }
                self.emit(EventClass::ServerRead, start, bytes, root);
                self.push_ready(id, Frame::Array(items));
            }
            Request::Set(key, value) => {
                let mut batch = WriteBatch::new();
                batch.put(&key, &value);
                self.enqueue_write(id, batch, bytes, WriteReply::Ok);
            }
            Request::Del(key) => {
                let mut batch = WriteBatch::new();
                batch.delete(&key);
                self.enqueue_write(id, batch, bytes, WriteReply::Ok);
            }
            Request::Batch(ops) => {
                let count = ops.len() as i64;
                let mut batch = WriteBatch::new();
                for op in &ops {
                    match op {
                        BatchOp::Put(k, v) => batch.put(k, v),
                        BatchOp::Del(k) => batch.delete(k),
                    }
                }
                self.enqueue_write(id, batch, bytes, WriteReply::Count(count));
            }
            Request::Ping => {
                let now = self.clock().now();
                let root = self.mint_root();
                self.emit_span(EventClass::ServerControl, now, now, 0, root);
                self.push_ready(id, Frame::Simple("PONG".into()));
            }
            Request::Info => {
                let start = self.read_barrier()?;
                let root = self.mint_root();
                let text = self.info_text();
                self.emit(EventClass::ServerControl, start, text.len() as u64, root);
                self.push_ready(id, Frame::Bulk(text.into_bytes()));
            }
            Request::Scan { start, end, limit, prefix, count_only } => {
                self.open_scan(id, start, end, limit, prefix, count_only)?
            }
            Request::ScanNext(cursor) => self.resume_scan(id, cursor)?,
        }
        Ok(())
    }

    /// Open scan cursors (leases on pinned cross-shard snapshots).
    pub fn open_cursors(&self) -> usize {
        self.cursors.len()
    }

    /// Expires cursors whose lease deadline has passed on the virtual
    /// clock, releasing their pinned snapshots.
    fn sweep_cursors(&mut self) {
        let now = self.clock().now();
        let dead: Vec<u64> =
            self.cursors.iter().filter(|(_, c)| c.deadline < now).map(|(id, _)| *id).collect();
        for id in dead {
            let cur = self.cursors.remove(&id).expect("id came from the map");
            self.store.release_snapshots(cur.snaps);
            self.counters.cursors_expired.fetch_add(1, Ordering::Relaxed);
        }
        self.counters.cursors_open.store(self.cursors.len() as u64, Ordering::Relaxed);
    }

    /// `SCAN start end limit [PREFIX p] [COUNT]`: settle the queue
    /// (read-your-writes), pin a cross-shard snapshot, serve the first
    /// page — filtering and counting server-side — and, if the range is
    /// not exhausted, park the snapshot under a fresh cursor lease.
    fn open_scan(
        &mut self,
        id: ConnId,
        start: Vec<u8>,
        end: Vec<u8>,
        limit: u64,
        prefix: Option<Vec<u8>>,
        count_only: bool,
    ) -> Result<()> {
        self.sweep_cursors();
        if self.cursors.len() >= self.max_cursors {
            self.counters.busy_rejections.fetch_add(1, Ordering::Relaxed);
            self.push_ready(id, Frame::busy());
            return Ok(());
        }
        let page = (limit.min(self.max_scan_page as u64)) as usize;
        let end = if end.is_empty() { None } else { Some(end) };
        let t0 = self.read_barrier()?;
        let root = self.begin_request();
        let snaps = self.store.pin_snapshots();
        let result =
            self.scan_one_page(&snaps, &start, end.as_deref(), page, prefix.as_deref(), count_only);
        self.end_request();
        let result = match result {
            Ok(r) => r,
            Err(e) => {
                self.store.release_snapshots(snaps);
                return Err(e);
            }
        };
        let cursor = match result.resume.clone() {
            Some(resume) => {
                let cid = self.next_cursor;
                self.next_cursor += 1;
                let deadline = self.clock().now() + self.cursor_ttl;
                self.cursors
                    .insert(cid, Cursor { snaps, resume, end, page, prefix, count_only, deadline });
                self.counters.cursors_opened.fetch_add(1, Ordering::Relaxed);
                cid
            }
            None => {
                self.store.release_snapshots(snaps);
                0
            }
        };
        self.counters.cursors_open.store(self.cursors.len() as u64, Ordering::Relaxed);
        self.finish_scan_reply(id, cursor, result, count_only, t0, root);
        Ok(())
    }

    /// `SCAN NEXT cursor`: serve the next page at the cursor's pinned
    /// snapshot (no read barrier — post-pin writes are invisible anyway)
    /// and renew or retire the lease.
    fn resume_scan(&mut self, id: ConnId, cid: u64) -> Result<()> {
        self.sweep_cursors();
        let t0 = self.clock().now();
        let Some(mut cur) = self.cursors.remove(&cid) else {
            self.push_ready(id, Frame::Error(format!("ERR cursor {cid} not found or expired")));
            return Ok(());
        };
        let root = self.begin_request();
        let result = self.scan_one_page(
            &cur.snaps,
            &cur.resume,
            cur.end.as_deref(),
            cur.page,
            cur.prefix.as_deref(),
            cur.count_only,
        );
        self.end_request();
        let result = match result {
            Ok(r) => r,
            Err(e) => {
                self.store.release_snapshots(cur.snaps);
                self.counters.cursors_open.store(self.cursors.len() as u64, Ordering::Relaxed);
                return Err(e);
            }
        };
        let count_only = cur.count_only;
        let cursor = match result.resume.clone() {
            Some(resume) => {
                cur.resume = resume;
                cur.deadline = self.clock().now() + self.cursor_ttl;
                self.cursors.insert(cid, cur);
                cid
            }
            None => {
                self.store.release_snapshots(cur.snaps);
                0
            }
        };
        self.counters.cursors_open.store(self.cursors.len() as u64, Ordering::Relaxed);
        self.finish_scan_reply(id, cursor, result, count_only, t0, root);
        Ok(())
    }

    /// One scan page against pinned snapshots. Server scans never fill
    /// the block cache: a client streaming a large range must not evict
    /// the point-read hot set.
    fn scan_one_page(
        &mut self,
        snaps: &[Snapshot],
        start: &[u8],
        end: Option<&[u8]>,
        page: usize,
        prefix: Option<&[u8]>,
        count_only: bool,
    ) -> Result<noblsm::ScanResult> {
        let sopts = ScanOptions {
            start: Some(start),
            end,
            prefix,
            limit: page,
            count_only,
            fill_cache: false,
            ..ScanOptions::default()
        };
        self.store.scan_at(snaps, &sopts)
    }

    /// Counts, traces and queues one scan page reply:
    /// `*2 [:cursor, *2n k/v bulks]`, or `*2 [:cursor, :count]` for a
    /// counting scan (no row payloads cross the wire).
    fn finish_scan_reply(
        &mut self,
        id: ConnId,
        cursor: u64,
        result: noblsm::ScanResult,
        count_only: bool,
        start: Nanos,
        root: TraceCtx,
    ) {
        let bytes: u64 = result.rows.iter().map(|(k, v)| (k.len() + v.len()) as u64).sum();
        self.counters.scan_rows.fetch_add(result.count, Ordering::Relaxed);
        self.emit(EventClass::ServerScan, start, bytes, root);
        let body = if count_only {
            Frame::Integer(result.count as i64)
        } else {
            let mut flat = Vec::with_capacity(result.rows.len() * 2);
            for (k, v) in result.rows {
                flat.push(Frame::Bulk(k));
                flat.push(Frame::Bulk(v));
            }
            Frame::Array(flat)
        };
        let reply = Frame::Array(vec![Frame::Integer(cursor as i64), body]);
        self.push_ready(id, reply);
    }

    /// Read-your-writes: settle the group-commit queue before serving a
    /// read or INFO, so a pipelined `SET k; GET k` observes its write.
    /// Returns the instant the read began (before any drain it forced).
    fn read_barrier(&mut self) -> Result<Nanos> {
        let start = self.clock().now();
        if self.store.pending() > 0 {
            self.flush()?;
        }
        Ok(start)
    }

    fn enqueue_write(&mut self, id: ConnId, batch: WriteBatch, bytes: u64, reply: WriteReply) {
        let start = self.clock().now();
        // Mint the request's trace root here — the `server_write` span
        // emitted at ticket resolution carries it, and the group commit
        // that eventually lands the batch parents under it (leader) or
        // links to it (coalesced follower).
        let ctx = self.mint_root();
        let ticket = self.store.enqueue_ctx(&self.wopts, &batch, ctx);
        if let Some(conn) = self.conns.get_mut(&id) {
            conn.replies.push_back(PendingReply::Await { ticket, start, bytes, reply, ctx });
            conn.inflight += 1;
            self.inflight += 1;
            self.counters.inflight.store(self.inflight as u64, Ordering::Relaxed);
        }
    }

    /// A fresh trace root for one request ([`TraceCtx::NONE`] when
    /// tracing is off).
    fn mint_root(&self) -> TraceCtx {
        self.trace.as_ref().map_or(TraceCtx::NONE, |t| t.mint_root())
    }

    /// Mints a request root and makes it the ambient context, so every
    /// span the request's synchronous work provokes nests under it.
    /// Balance with [`ServerCore::end_request`] on all paths.
    fn begin_request(&self) -> TraceCtx {
        match &self.trace {
            Some(t) => {
                let root = t.mint_root();
                t.push_ctx(root);
                root
            }
            None => TraceCtx::NONE,
        }
    }

    fn end_request(&self) {
        if let Some(t) = &self.trace {
            t.pop_ctx();
        }
    }

    fn emit(&self, class: EventClass, start: Nanos, bytes: u64, ctx: TraceCtx) {
        let end = self.clock().now();
        self.emit_span(class, start, end, bytes, ctx);
    }

    fn emit_span(&self, class: EventClass, start: Nanos, end: Nanos, bytes: u64, ctx: TraceCtx) {
        if let Some(t) = &self.trace {
            t.emit_ctx(class, start, end, bytes, ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use nob_ext4::Ext4Config;
    use noblsm::Options;

    use super::*;

    fn small_core(max_inflight: usize, pipeline: usize) -> ServerCore {
        let opts = ServerOptions {
            store: StoreOptions {
                shards: 2,
                fs: Ext4Config::default(),
                db: Options::default(),
                ..StoreOptions::default()
            },
            max_inflight,
            pipeline_per_conn: pipeline,
            ..ServerOptions::default()
        };
        ServerCore::open(opts).unwrap()
    }

    fn feed_req(core: &mut ServerCore, id: ConnId, req: &Request) {
        core.feed(id, &req.to_frame().to_bytes()).unwrap();
    }

    fn decode_all(bytes: &[u8]) -> Vec<Frame> {
        let mut d = Decoder::new();
        d.push(bytes);
        let mut out = Vec::new();
        while let Some(f) = d.next_frame().unwrap() {
            out.push(f);
        }
        out
    }

    #[test]
    fn set_then_get_sees_the_write() {
        let mut core = small_core(64, 64);
        let c = core.connect();
        feed_req(&mut core, c, &Request::Set(b"k".to_vec(), b"v".to_vec()));
        feed_req(&mut core, c, &Request::Get(b"k".to_vec()));
        core.flush().unwrap();
        let replies = decode_all(&core.take_output(c));
        assert_eq!(replies, vec![Frame::ok(), Frame::Bulk(b"v".to_vec())]);
    }

    #[test]
    fn replies_stay_in_request_order_across_flush() {
        let mut core = small_core(64, 64);
        let c = core.connect();
        // Write, read, write — the read's Ready reply must not overtake
        // the first write's parked reply.
        feed_req(&mut core, c, &Request::Set(b"a".to_vec(), b"1".to_vec()));
        feed_req(&mut core, c, &Request::Get(b"missing".to_vec()));
        feed_req(&mut core, c, &Request::Del(b"a".to_vec()));
        assert!(!core.output_blocked(c), "read barrier already settled the queue");
        core.flush().unwrap();
        let replies = decode_all(&core.take_output(c));
        assert_eq!(replies, vec![Frame::ok(), Frame::Nil, Frame::ok()]);
    }

    #[test]
    fn global_budget_yields_busy_in_order() {
        let mut core = small_core(2, 64);
        let c = core.connect();
        for i in 0..4u8 {
            feed_req(&mut core, c, &Request::Set(vec![i], b"v".to_vec()));
        }
        core.flush().unwrap();
        let replies = decode_all(&core.take_output(c));
        assert_eq!(replies.len(), 4);
        assert_eq!(&replies[..2], &[Frame::ok(), Frame::ok()]);
        assert!(replies[2].is_busy() && replies[3].is_busy(), "{replies:?}");
    }

    #[test]
    fn pipeline_cap_applies_to_reads_too() {
        let mut core = small_core(64, 2);
        let c = core.connect();
        feed_req(&mut core, c, &Request::Set(b"a".to_vec(), b"1".to_vec()));
        feed_req(&mut core, c, &Request::Set(b"b".to_vec(), b"2".to_vec()));
        feed_req(&mut core, c, &Request::Get(b"a".to_vec()));
        core.flush().unwrap();
        let replies = decode_all(&core.take_output(c));
        assert_eq!(&replies[..2], &[Frame::ok(), Frame::ok()]);
        assert!(replies[2].is_busy());
    }

    #[test]
    fn budget_frees_as_tickets_resolve() {
        let mut core = small_core(2, 64);
        let c = core.connect();
        feed_req(&mut core, c, &Request::Set(b"a".to_vec(), b"1".to_vec()));
        feed_req(&mut core, c, &Request::Set(b"b".to_vec(), b"2".to_vec()));
        core.flush().unwrap();
        assert_eq!(core.inflight(), 0);
        feed_req(&mut core, c, &Request::Set(b"c".to_vec(), b"3".to_vec()));
        core.flush().unwrap();
        let replies = decode_all(&core.take_output(c));
        assert_eq!(replies, vec![Frame::ok(); 3]);
    }

    #[test]
    fn protocol_error_poisons_but_replies_first() {
        let mut core = small_core(64, 64);
        let c = core.connect();
        core.feed(c, b"?bogus\r\n").unwrap();
        assert!(core.is_poisoned(c));
        let replies = decode_all(&core.take_output(c));
        assert_eq!(replies.len(), 1);
        assert!(replies[0].is_error());
        // Later bytes are ignored — the stream is untrustworthy.
        feed_req(&mut core, c, &Request::Ping);
        assert_eq!(core.pending_replies(c), 0);
    }

    #[test]
    fn bad_request_in_good_frame_is_recoverable() {
        let mut core = small_core(64, 64);
        let c = core.connect();
        let bogus = Frame::Array(vec![Frame::Bulk(b"NOPE".to_vec())]);
        core.feed(c, &bogus.to_bytes()).unwrap();
        feed_req(&mut core, c, &Request::Ping);
        let replies = decode_all(&core.take_output(c));
        assert_eq!(replies.len(), 2);
        assert!(replies[0].is_error() && !replies[0].is_busy());
        assert_eq!(replies[1], Frame::Simple("PONG".into()));
        assert!(!core.is_poisoned(c));
    }

    #[test]
    fn batch_is_atomic_and_counts_ops() {
        let mut core = small_core(64, 64);
        let c = core.connect();
        feed_req(
            &mut core,
            c,
            &Request::Batch(vec![
                BatchOp::Put(b"x".to_vec(), b"1".to_vec()),
                BatchOp::Put(b"y".to_vec(), b"2".to_vec()),
                BatchOp::Del(b"x".to_vec()),
            ]),
        );
        feed_req(&mut core, c, &Request::MGet(vec![b"x".to_vec(), b"y".to_vec()]));
        core.flush().unwrap();
        let replies = decode_all(&core.take_output(c));
        assert_eq!(
            replies,
            vec![Frame::Integer(3), Frame::Array(vec![Frame::Nil, Frame::Bulk(b"2".to_vec())]),]
        );
    }

    #[test]
    fn info_reports_server_and_shard_stats() {
        let mut core = small_core(64, 64);
        let c = core.connect();
        feed_req(&mut core, c, &Request::Set(b"k".to_vec(), b"v".to_vec()));
        feed_req(&mut core, c, &Request::Info);
        core.flush().unwrap();
        let replies = decode_all(&core.take_output(c));
        let Frame::Bulk(text) = &replies[1] else { panic!("INFO must reply bulk") };
        let text = String::from_utf8_lossy(text);
        assert!(text.contains("# server"), "{text}");
        assert!(text.contains("requests_write:1"), "{text}");
        assert!(text.contains("shards:2"), "{text}");
        assert!(text.contains("noblsm.stats:"), "{text}");
        assert!(text.contains("# replication\nrole:standalone\nepoch:0\n"), "{text}");
        assert!(text.contains("seqs:"), "{text}");
        assert!(text.contains("shipped_records:0"), "{text}");
    }

    #[test]
    fn follower_role_rejects_writes_but_serves_reads() {
        let mut core = small_core(64, 64);
        let c = core.connect();
        feed_req(&mut core, c, &Request::Set(b"k".to_vec(), b"v".to_vec()));
        core.flush().unwrap();
        assert_eq!(decode_all(&core.take_output(c)), vec![Frame::ok()]);
        core.set_repl_status(ReplStatus {
            role: ReplRole::Follower,
            epoch: 3,
            lag_nanos: 42,
            ..ReplStatus::default()
        });
        feed_req(&mut core, c, &Request::Set(b"k".to_vec(), b"v2".to_vec()));
        feed_req(&mut core, c, &Request::Get(b"k".to_vec()));
        feed_req(&mut core, c, &Request::Info);
        core.flush().unwrap();
        let replies = decode_all(&core.take_output(c));
        let Frame::Error(msg) = &replies[0] else { panic!("write must be rejected: {replies:?}") };
        assert!(msg.starts_with("READONLY"), "{msg}");
        assert_eq!(replies[1], Frame::Bulk(b"v".to_vec()), "reads still serve");
        let Frame::Bulk(text) = &replies[2] else { panic!("INFO must reply bulk") };
        let text = String::from_utf8_lossy(text);
        assert!(text.contains("role:follower\nepoch:3\nlag_nanos:42\n"), "{text}");
        assert!(text.contains("readonly_rejections:1"), "{text}");
        // Promotion flips the role and writes flow again.
        core.set_repl_status(ReplStatus {
            role: ReplRole::Leader,
            epoch: 4,
            lag_nanos: 0,
            ..ReplStatus::default()
        });
        feed_req(&mut core, c, &Request::Set(b"k".to_vec(), b"v3".to_vec()));
        core.flush().unwrap();
        assert_eq!(decode_all(&core.take_output(c)), vec![Frame::ok()]);
    }

    #[test]
    fn scan_cursor_serves_a_frozen_snapshot() {
        let mut core = small_core(64, 64);
        let c = core.connect();
        for i in 0..30u32 {
            feed_req(&mut core, c, &Request::Set(format!("k{i:02}").into_bytes(), b"old".to_vec()));
        }
        core.flush().unwrap();
        core.take_output(c);
        // Open a scan, then overwrite and extend the keyspace.
        feed_req(&mut core, c, &Request::scan(Vec::new(), Vec::new(), 10));
        for i in 0..40u32 {
            feed_req(&mut core, c, &Request::Set(format!("k{i:02}").into_bytes(), b"new".to_vec()));
        }
        core.flush().unwrap();
        assert_eq!(core.open_cursors(), 1);
        let replies = decode_all(&core.take_output(c));
        let Frame::Array(first) = &replies[0] else { panic!("scan reply: {replies:?}") };
        let Frame::Integer(cursor) = first[0] else { panic!("no cursor: {first:?}") };
        assert!(cursor > 0);
        // Resume pages: every row still carries the pre-scan value, and
        // keys 30..39 (inserted after the pin) never appear.
        let mut rows = 0;
        let mut cur = cursor as u64;
        while cur != 0 {
            feed_req(&mut core, c, &Request::ScanNext(cur));
            let replies = decode_all(&core.take_output(c));
            let Frame::Array(page) = &replies[0] else { panic!("{replies:?}") };
            let Frame::Integer(next) = page[0] else { panic!("{page:?}") };
            let Frame::Array(flat) = &page[1] else { panic!("{page:?}") };
            for pair in flat.chunks_exact(2) {
                let Frame::Bulk(v) = &pair[1] else { panic!("{pair:?}") };
                assert_eq!(v, b"old", "post-pin write leaked into the cursor");
                rows += 1;
            }
            cur = next as u64;
        }
        assert_eq!(rows + 10, 30, "exactly the pinned keyspace, once");
        assert_eq!(core.open_cursors(), 0, "exhausted cursor released its lease");
    }

    #[test]
    fn idle_cursors_expire_and_release_their_snapshots() {
        let mut core = small_core(64, 64);
        let c = core.connect();
        for i in 0..20u32 {
            feed_req(&mut core, c, &Request::Set(vec![i as u8], b"v".to_vec()));
        }
        core.flush().unwrap();
        feed_req(&mut core, c, &Request::scan(Vec::new(), Vec::new(), 5));
        assert_eq!(core.open_cursors(), 1);
        // Let the lease lapse on the virtual clock; the next flush sweeps.
        let deadline = core.clock().now() + Nanos::from_secs(61);
        core.clock().advance_to(deadline);
        core.flush().unwrap();
        assert_eq!(core.open_cursors(), 0);
        core.take_output(c);
        feed_req(&mut core, c, &Request::ScanNext(1));
        let replies = decode_all(&core.take_output(c));
        assert!(replies[0].is_error(), "expired cursor must error: {replies:?}");
        let info = core.info_text();
        assert!(info.contains("cursors_expired:1"), "{info}");
        assert!(info.contains("cursors_opened:1"), "{info}");
    }

    #[test]
    fn cursor_table_full_pushes_back_busy() {
        let opts = ServerOptions {
            store: StoreOptions { shards: 2, ..StoreOptions::default() },
            max_cursors: 1,
            ..ServerOptions::default()
        };
        let mut core = ServerCore::open(opts).unwrap();
        let c = core.connect();
        for i in 0..20u32 {
            feed_req(&mut core, c, &Request::Set(vec![i as u8], b"v".to_vec()));
        }
        core.flush().unwrap();
        core.take_output(c);
        feed_req(&mut core, c, &Request::scan(Vec::new(), Vec::new(), 5));
        feed_req(&mut core, c, &Request::scan(Vec::new(), Vec::new(), 5));
        let replies = decode_all(&core.take_output(c));
        assert!(matches!(replies[0], Frame::Array(_)), "{replies:?}");
        assert!(replies[1].is_busy(), "second cursor must hit the cap: {replies:?}");
    }

    #[test]
    fn server_scans_do_not_disturb_the_block_cache_hit_ratio() {
        let mut core = small_core(64, 4096);
        let c = core.connect();
        // Build a table-resident keyspace, then a hot set that the block
        // cache serves.
        for i in 0..400u32 {
            feed_req(&mut core, c, &Request::Set(format!("k{i:03}").into_bytes(), vec![7u8; 1024]));
        }
        core.flush().unwrap();
        for i in 0..core.store().shards() {
            let now = core.clock().now();
            core.store_mut().shard_db_mut(i).flush(now).unwrap();
        }
        core.take_output(c);
        let hot: Vec<Vec<u8>> = (0..40u32).map(|i| format!("k{i:03}").into_bytes()).collect();
        for k in &hot {
            feed_req(&mut core, c, &Request::Get(k.clone()));
            feed_req(&mut core, c, &Request::Get(k.clone()));
        }
        core.take_output(c);
        let snap = |core: &ServerCore| -> Vec<(u64, u64)> {
            (0..core.store().shards()).map(|i| core.store().shard_db(i).cache_hit_stats()).collect()
        };
        let stats0 = snap(&core);
        // Server scans run with fill_cache=false, so a full-range scan must
        // not populate the cache: a second identical scan misses exactly as
        // much as the first (nothing was inserted the first time around).
        feed_req(&mut core, c, &Request::scan(Vec::new(), Vec::new(), 1_000_000));
        core.take_output(c);
        let stats1 = snap(&core);
        feed_req(&mut core, c, &Request::scan(Vec::new(), Vec::new(), 1_000_000));
        core.take_output(c);
        let stats2 = snap(&core);
        let miss1: u64 = stats1.iter().zip(&stats0).map(|(a, b)| a.1 - b.1).sum();
        let miss2: u64 = stats2.iter().zip(&stats1).map(|(a, b)| a.1 - b.1).sum();
        assert!(miss1 > 0, "the scan should have read uncached blocks: {stats0:?} {stats1:?}");
        assert_eq!(
            miss2, miss1,
            "second scan missed differently — the first scan filled the cache"
        );
        // And it must not evict: the hot set still hits without a single miss.
        for k in &hot {
            feed_req(&mut core, c, &Request::Get(k.clone()));
        }
        core.take_output(c);
        let stats3 = snap(&core);
        for (i, (replay, after)) in stats3.iter().zip(&stats2).enumerate() {
            assert_eq!(
                replay.1, after.1,
                "shard {i}: hot keys missed after the scan — the scan disturbed the hot set"
            );
            assert!(replay.0 > after.0, "shard {i}: hot replay must hit the cache");
        }
    }

    #[test]
    fn disconnect_releases_inflight_budget() {
        let mut core = small_core(2, 64);
        let c1 = core.connect();
        feed_req(&mut core, c1, &Request::Set(b"a".to_vec(), b"1".to_vec()));
        feed_req(&mut core, c1, &Request::Set(b"b".to_vec(), b"2".to_vec()));
        assert_eq!(core.inflight(), 2);
        core.disconnect(c1);
        assert_eq!(core.inflight(), 0);
        let c2 = core.connect();
        feed_req(&mut core, c2, &Request::Set(b"c".to_vec(), b"3".to_vec()));
        core.flush().unwrap();
        let replies = decode_all(&core.take_output(c2));
        assert_eq!(replies, vec![Frame::ok()]);
        // The orphaned writes still committed.
        feed_req(&mut core, c2, &Request::Get(b"a".to_vec()));
        core.flush().unwrap();
        assert_eq!(decode_all(&core.take_output(c2)), vec![Frame::Bulk(b"1".to_vec())]);
    }
}
