//! RESP-subset wire protocol: frames, an incremental decoder, and the
//! request vocabulary the server understands.
//!
//! The frame grammar is the classic Redis serialization protocol,
//! restricted to the five types the server actually uses:
//!
//! ```text
//! +<text>\r\n            simple string (e.g. +OK, +PONG)
//! -<text>\r\n            error (e.g. -ERR ..., -BUSY ...)
//! :<int>\r\n             integer
//! $<len>\r\n<bytes>\r\n  bulk string ($-1\r\n is the nil bulk)
//! *<len>\r\n<frames>     array (*-1 is rejected: requests are never nil)
//! ```
//!
//! Requests are arrays of bulk strings — `["SET", key, value]` — and the
//! decoder enforces hard caps on bulk length, array arity and nesting
//! depth so a malformed or hostile peer can make the server reply with a
//! protocol error but never allocate unboundedly, panic or desync.

use std::fmt;

/// Hard cap on one bulk string's declared length (16 MiB).
pub const MAX_BULK: usize = 16 << 20;
/// Hard cap on one array's declared arity.
pub const MAX_ARRAY: usize = 4096;
/// Hard cap on array nesting depth.
pub const MAX_DEPTH: usize = 4;
/// Hard cap on a simple-string / error line length.
pub const MAX_LINE: usize = 4096;

/// A decoded protocol frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// `+text` — status replies (`+OK`, `+PONG`).
    Simple(String),
    /// `-text` — error replies (`-ERR …`, `-BUSY …`).
    Error(String),
    /// `:n` — integer replies (DEL count, BATCH count).
    Integer(i64),
    /// `$n` + payload — a binary-safe string.
    Bulk(Vec<u8>),
    /// `$-1` — the nil bulk (GET miss).
    Nil,
    /// `*n` + elements.
    Array(Vec<Frame>),
}

impl Frame {
    /// The canonical `+OK` reply.
    pub fn ok() -> Frame {
        Frame::Simple("OK".into())
    }

    /// An admission-control pushback reply; see [`Frame::is_busy`].
    pub fn busy() -> Frame {
        Frame::Error("BUSY server in-flight budget exhausted, retry".into())
    }

    /// Whether this frame is the admission controller's BUSY pushback.
    pub fn is_busy(&self) -> bool {
        matches!(self, Frame::Error(m) if m.starts_with("BUSY"))
    }

    /// Whether this frame is any error reply.
    pub fn is_error(&self) -> bool {
        matches!(self, Frame::Error(_))
    }

    /// Appends this frame's wire encoding to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Frame::Simple(s) => {
                out.push(b'+');
                out.extend_from_slice(s.as_bytes());
                out.extend_from_slice(b"\r\n");
            }
            Frame::Error(s) => {
                out.push(b'-');
                out.extend_from_slice(s.as_bytes());
                out.extend_from_slice(b"\r\n");
            }
            Frame::Integer(n) => {
                out.push(b':');
                out.extend_from_slice(n.to_string().as_bytes());
                out.extend_from_slice(b"\r\n");
            }
            Frame::Bulk(b) => {
                out.push(b'$');
                out.extend_from_slice(b.len().to_string().as_bytes());
                out.extend_from_slice(b"\r\n");
                out.extend_from_slice(b);
                out.extend_from_slice(b"\r\n");
            }
            Frame::Nil => out.extend_from_slice(b"$-1\r\n"),
            Frame::Array(items) => {
                out.push(b'*');
                out.extend_from_slice(items.len().to_string().as_bytes());
                out.extend_from_slice(b"\r\n");
                for it in items {
                    it.encode(out);
                }
            }
        }
    }

    /// This frame's wire encoding as a fresh buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }
}

/// Why a byte stream failed to parse as a frame (or a frame as a request).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The first byte of a frame is not one of `+ - : $ *`.
    BadType(u8),
    /// A `$`/`*`/`:` length or integer field failed to parse.
    BadLength,
    /// A declared length exceeds [`MAX_BULK`], [`MAX_ARRAY`] or
    /// [`MAX_LINE`], or arrays nest past [`MAX_DEPTH`].
    Oversize(&'static str),
    /// A bulk payload was not terminated by `\r\n`.
    BadTerminator,
    /// The frame parsed but is not a request the server understands.
    BadRequest(String),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::BadType(b) => write!(f, "protocol: unknown frame type byte 0x{b:02x}"),
            ProtoError::BadLength => write!(f, "protocol: malformed length"),
            ProtoError::Oversize(what) => write!(f, "protocol: {what} limit exceeded"),
            ProtoError::BadTerminator => write!(f, "protocol: missing CRLF terminator"),
            ProtoError::BadRequest(m) => write!(f, "request: {m}"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// An incremental frame decoder over a growable byte buffer.
///
/// Feed raw bytes with [`push`](Decoder::push), then call
/// [`next_frame`](Decoder::next_frame) until it returns `Ok(None)`
/// (need more bytes). A `ProtoError` is **sticky**: the stream position
/// is no longer trustworthy, so every later call returns the same error
/// and the connection must be torn down after flushing the error reply.
#[derive(Debug, Default)]
pub struct Decoder {
    buf: Vec<u8>,
    pos: usize,
    poisoned: Option<ProtoError>,
}

/// Outcome of one parse attempt: a frame and the cursor past it.
type Parsed = Option<(Frame, usize)>;

impl Decoder {
    /// A fresh decoder with an empty buffer.
    pub fn new() -> Decoder {
        Decoder::default()
    }

    /// Appends raw bytes from the transport.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a returned frame.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Decodes the next complete frame, `Ok(None)` when more bytes are
    /// needed, or the (sticky) protocol error.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, ProtoError> {
        if let Some(e) = &self.poisoned {
            return Err(e.clone());
        }
        match parse_frame(&self.buf[self.pos..], 0) {
            Ok(Some((frame, used))) => {
                self.pos += used;
                // Compact once the consumed prefix dominates the buffer.
                if self.pos > 4096 && self.pos * 2 > self.buf.len() {
                    self.buf.drain(..self.pos);
                    self.pos = 0;
                }
                Ok(Some(frame))
            }
            Ok(None) => Ok(None),
            Err(e) => {
                self.poisoned = Some(e.clone());
                Err(e)
            }
        }
    }
}

/// Finds the `\r\n` terminating the line starting at `buf[0]`, returning
/// the line body and the cursor past the terminator.
fn parse_line(buf: &[u8]) -> Result<Option<(&[u8], usize)>, ProtoError> {
    let limit = buf.len().min(MAX_LINE + 2);
    for i in 0..limit {
        if buf[i] == b'\n' {
            if i == 0 || buf[i - 1] != b'\r' {
                return Err(ProtoError::BadTerminator);
            }
            return Ok(Some((&buf[..i - 1], i + 1)));
        }
    }
    if buf.len() > MAX_LINE + 1 {
        return Err(ProtoError::Oversize("line"));
    }
    Ok(None)
}

/// Parses a decimal integer field (optionally negative, as in `$-1`).
fn parse_int(body: &[u8]) -> Result<i64, ProtoError> {
    if body.is_empty() || body.len() > 20 {
        return Err(ProtoError::BadLength);
    }
    let (neg, digits) = match body[0] {
        b'-' => (true, &body[1..]),
        _ => (false, body),
    };
    if digits.is_empty() {
        return Err(ProtoError::BadLength);
    }
    let mut n: i64 = 0;
    for &b in digits {
        if !b.is_ascii_digit() {
            return Err(ProtoError::BadLength);
        }
        n = n
            .checked_mul(10)
            .and_then(|n| n.checked_add(i64::from(b - b'0')))
            .ok_or(ProtoError::BadLength)?;
    }
    Ok(if neg { -n } else { n })
}

/// Recursive-descent frame parser over `buf`, `Ok(None)` if incomplete.
fn parse_frame(buf: &[u8], depth: usize) -> Result<Parsed, ProtoError> {
    if depth > MAX_DEPTH {
        return Err(ProtoError::Oversize("nesting depth"));
    }
    let Some(&ty) = buf.first() else { return Ok(None) };
    let rest = &buf[1..];
    match ty {
        b'+' | b'-' => {
            let Some((body, used)) = parse_line(rest)? else { return Ok(None) };
            let text = String::from_utf8_lossy(body).into_owned();
            let frame = if ty == b'+' { Frame::Simple(text) } else { Frame::Error(text) };
            Ok(Some((frame, 1 + used)))
        }
        b':' => {
            let Some((body, used)) = parse_line(rest)? else { return Ok(None) };
            Ok(Some((Frame::Integer(parse_int(body)?), 1 + used)))
        }
        b'$' => {
            let Some((body, used)) = parse_line(rest)? else { return Ok(None) };
            let len = parse_int(body)?;
            if len == -1 {
                return Ok(Some((Frame::Nil, 1 + used)));
            }
            if len < 0 {
                return Err(ProtoError::BadLength);
            }
            let len = len as usize;
            if len > MAX_BULK {
                return Err(ProtoError::Oversize("bulk length"));
            }
            let payload = &rest[used..];
            if payload.len() < len + 2 {
                return Ok(None);
            }
            if &payload[len..len + 2] != b"\r\n" {
                return Err(ProtoError::BadTerminator);
            }
            Ok(Some((Frame::Bulk(payload[..len].to_vec()), 1 + used + len + 2)))
        }
        b'*' => {
            let Some((body, used)) = parse_line(rest)? else { return Ok(None) };
            let len = parse_int(body)?;
            if len < 0 {
                return Err(ProtoError::BadLength);
            }
            let len = len as usize;
            if len > MAX_ARRAY {
                return Err(ProtoError::Oversize("array arity"));
            }
            let mut items = Vec::with_capacity(len.min(64));
            let mut cursor = 1 + used;
            for _ in 0..len {
                let Some((item, item_used)) = parse_frame(&buf[cursor..], depth + 1)? else {
                    return Ok(None);
                };
                items.push(item);
                cursor += item_used;
            }
            Ok(Some((Frame::Array(items), cursor)))
        }
        other => Err(ProtoError::BadType(other)),
    }
}

/// Parses an ASCII-decimal `u64` request argument (SCAN limit / cursor).
fn parse_decimal_arg(bytes: &[u8], what: &str) -> Result<u64, ProtoError> {
    std::str::from_utf8(bytes)
        .ok()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ProtoError::BadRequest(format!("{what} must be a decimal integer")))
}

/// One operation inside a BATCH request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchOp {
    /// Insert or overwrite `key` with `value`.
    Put(Vec<u8>, Vec<u8>),
    /// Delete `key`.
    Del(Vec<u8>),
}

/// Coarse request class, used for admission accounting, per-class trace
/// spans and the `server.*` metrics namespace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestClass {
    /// GET / MGET — served from the store without queueing.
    Read,
    /// SET / DEL / BATCH — enqueued into the group-commit queue.
    Write,
    /// PING / INFO — served by the server itself.
    Control,
    /// SCAN / SCAN NEXT — range pages served at a pinned cursor snapshot.
    Scan,
}

impl RequestClass {
    /// Stable snake_case name, used in metric names.
    pub fn name(self) -> &'static str {
        match self {
            RequestClass::Read => "read",
            RequestClass::Write => "write",
            RequestClass::Control => "control",
            RequestClass::Scan => "scan",
        }
    }
}

/// A parsed client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Point lookup; replies `$v` or `$-1`.
    Get(Vec<u8>),
    /// Insert or overwrite; replies `+OK`.
    Set(Vec<u8>, Vec<u8>),
    /// Delete; replies `+OK`.
    Del(Vec<u8>),
    /// Multi-key lookup; replies an array of `$v` / `$-1`.
    MGet(Vec<Vec<u8>>),
    /// Atomic multi-op write; replies `:n` (operation count).
    Batch(Vec<BatchOp>),
    /// Liveness probe; replies `+PONG`.
    Ping,
    /// Server + store introspection; replies one bulk text blob.
    Info,
    /// Open a range scan over `[start, end)` (empty bulk = unbounded
    /// bound) returning up to `limit` rows; replies
    /// `*2 [:cursor, *2n k/v bulks]`. A non-zero cursor is a lease on a
    /// pinned cross-shard snapshot — resume with [`Request::ScanNext`]
    /// before it expires; cursor `0` means the range is exhausted.
    ///
    /// Wire form: `SCAN <start> <end> <limit> [PREFIX <p>] [COUNT]`.
    /// `PREFIX` narrows the range server-side to keys starting with `p`;
    /// `COUNT` suppresses the row payload and replies
    /// `*2 [:cursor, :count]` instead — the filter and the tally both run
    /// on the server, so neither ships unwanted rows over the wire.
    Scan {
        /// Inclusive range start (empty = unbounded).
        start: Vec<u8>,
        /// Exclusive range end (empty = unbounded).
        end: Vec<u8>,
        /// Maximum rows visited per page.
        limit: u64,
        /// Server-side key-prefix filter.
        prefix: Option<Vec<u8>>,
        /// Reply with a row count instead of row payloads.
        count_only: bool,
    },
    /// Fetch the next page of an open scan cursor (`SCAN NEXT <cursor>`);
    /// reply as for [`Request::Scan`], served at the cursor's pinned
    /// snapshot.
    ScanNext(u64),
}

impl Request {
    /// Plain range scan: no prefix filter, full row payloads.
    pub fn scan(start: Vec<u8>, end: Vec<u8>, limit: u64) -> Request {
        Request::Scan { start, end, limit, prefix: None, count_only: false }
    }

    /// The request's admission/trace class.
    pub fn class(&self) -> RequestClass {
        match self {
            Request::Get(_) | Request::MGet(_) => RequestClass::Read,
            Request::Set(..) | Request::Del(_) | Request::Batch(_) => RequestClass::Write,
            Request::Ping | Request::Info => RequestClass::Control,
            Request::Scan { .. } | Request::ScanNext(_) => RequestClass::Scan,
        }
    }

    /// Approximate payload bytes carried by the request (keys + values),
    /// the unit the trace span's `bytes` field reports.
    pub fn payload_bytes(&self) -> u64 {
        match self {
            Request::Get(k) | Request::Del(k) => k.len() as u64,
            Request::Set(k, v) => (k.len() + v.len()) as u64,
            Request::MGet(keys) => keys.iter().map(|k| k.len() as u64).sum(),
            Request::Batch(ops) => ops
                .iter()
                .map(|op| match op {
                    BatchOp::Put(k, v) => (k.len() + v.len()) as u64,
                    BatchOp::Del(k) => k.len() as u64,
                })
                .sum(),
            Request::Scan { start, end, prefix, .. } => {
                (start.len() + end.len() + prefix.as_ref().map_or(0, Vec::len)) as u64
            }
            Request::Ping | Request::Info | Request::ScanNext(_) => 0,
        }
    }

    /// Encodes the request as its wire frame (array of bulk strings).
    pub fn to_frame(&self) -> Frame {
        fn bulk(b: &[u8]) -> Frame {
            Frame::Bulk(b.to_vec())
        }
        let items = match self {
            Request::Get(k) => vec![bulk(b"GET"), bulk(k)],
            Request::Set(k, v) => vec![bulk(b"SET"), bulk(k), bulk(v)],
            Request::Del(k) => vec![bulk(b"DEL"), bulk(k)],
            Request::MGet(keys) => {
                let mut v = vec![bulk(b"MGET")];
                v.extend(keys.iter().map(|k| bulk(k)));
                v
            }
            Request::Batch(ops) => {
                let mut v = vec![bulk(b"BATCH")];
                for op in ops {
                    match op {
                        BatchOp::Put(k, val) => {
                            v.push(bulk(b"SET"));
                            v.push(bulk(k));
                            v.push(bulk(val));
                        }
                        BatchOp::Del(k) => {
                            v.push(bulk(b"DEL"));
                            v.push(bulk(k));
                        }
                    }
                }
                v
            }
            Request::Ping => vec![bulk(b"PING")],
            Request::Info => vec![bulk(b"INFO")],
            Request::Scan { start, end, limit, prefix, count_only } => {
                let mut v =
                    vec![bulk(b"SCAN"), bulk(start), bulk(end), bulk(limit.to_string().as_bytes())];
                if let Some(p) = prefix {
                    v.push(bulk(b"PREFIX"));
                    v.push(bulk(p));
                }
                if *count_only {
                    v.push(bulk(b"COUNT"));
                }
                v
            }
            Request::ScanNext(cursor) => {
                vec![bulk(b"SCAN"), bulk(b"NEXT"), bulk(cursor.to_string().as_bytes())]
            }
        };
        Frame::Array(items)
    }

    /// Parses a decoded frame as a request.
    ///
    /// # Errors
    ///
    /// [`ProtoError::BadRequest`] when the frame is not an array of bulk
    /// strings spelling a known command with the right arity.
    pub fn parse(frame: &Frame) -> Result<Request, ProtoError> {
        let Frame::Array(items) = frame else {
            return Err(ProtoError::BadRequest("request must be an array".into()));
        };
        let mut args = Vec::with_capacity(items.len());
        for it in items {
            match it {
                Frame::Bulk(b) => args.push(b.as_slice()),
                _ => {
                    return Err(ProtoError::BadRequest(
                        "request elements must be bulk strings".into(),
                    ))
                }
            }
        }
        let [cmd, rest @ ..] = args.as_slice() else {
            return Err(ProtoError::BadRequest("empty request".into()));
        };
        let cmd = cmd.to_ascii_uppercase();
        match (cmd.as_slice(), rest) {
            (b"GET", [k]) => Ok(Request::Get(k.to_vec())),
            (b"SET", [k, v]) => Ok(Request::Set(k.to_vec(), v.to_vec())),
            (b"DEL", [k]) => Ok(Request::Del(k.to_vec())),
            (b"MGET", keys) if !keys.is_empty() => {
                Ok(Request::MGet(keys.iter().map(|k| k.to_vec()).collect()))
            }
            (b"BATCH", ops) if !ops.is_empty() => {
                let mut parsed = Vec::new();
                let mut i = 0;
                while i < ops.len() {
                    match ops[i].to_ascii_uppercase().as_slice() {
                        b"SET" if i + 2 < ops.len() => {
                            parsed.push(BatchOp::Put(ops[i + 1].to_vec(), ops[i + 2].to_vec()));
                            i += 3;
                        }
                        b"DEL" if i + 1 < ops.len() => {
                            parsed.push(BatchOp::Del(ops[i + 1].to_vec()));
                            i += 2;
                        }
                        _ => {
                            return Err(ProtoError::BadRequest(
                                "BATCH expects SET k v / DEL k sequences".into(),
                            ))
                        }
                    }
                }
                Ok(Request::Batch(parsed))
            }
            (b"PING", []) => Ok(Request::Ping),
            (b"INFO", []) => Ok(Request::Info),
            (b"SCAN", [sub, cursor]) if sub.eq_ignore_ascii_case(b"NEXT") => {
                Ok(Request::ScanNext(parse_decimal_arg(cursor, "SCAN NEXT cursor")?))
            }
            (b"SCAN", [start, end, limit, opts @ ..]) => {
                let limit = parse_decimal_arg(limit, "SCAN limit")?;
                if limit == 0 {
                    return Err(ProtoError::BadRequest("SCAN limit must be at least 1".into()));
                }
                let mut prefix = None;
                let mut count_only = false;
                let mut i = 0;
                while i < opts.len() {
                    if opts[i].eq_ignore_ascii_case(b"PREFIX") && i + 1 < opts.len() {
                        prefix = Some(opts[i + 1].to_vec());
                        i += 2;
                    } else if opts[i].eq_ignore_ascii_case(b"COUNT") {
                        count_only = true;
                        i += 1;
                    } else {
                        return Err(ProtoError::BadRequest(
                            "SCAN options are PREFIX <p> and COUNT".into(),
                        ));
                    }
                }
                Ok(Request::Scan {
                    start: start.to_vec(),
                    end: end.to_vec(),
                    limit,
                    prefix,
                    count_only,
                })
            }
            _ => Err(ProtoError::BadRequest(format!(
                "unknown command or wrong arity: {}",
                String::from_utf8_lossy(&cmd)
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use proptest::collection::vec as pvec;
    use proptest::prelude::*;

    use super::*;

    fn decode_one(bytes: &[u8]) -> Result<Option<Frame>, ProtoError> {
        let mut d = Decoder::new();
        d.push(bytes);
        d.next_frame()
    }

    #[test]
    fn scalar_frames_round_trip() {
        for frame in [
            Frame::Simple("OK".into()),
            Frame::Error("ERR boom".into()),
            Frame::Integer(-42),
            Frame::Bulk(b"hello\r\nworld".to_vec()),
            Frame::Nil,
            Frame::Array(vec![Frame::Bulk(b"GET".to_vec()), Frame::Nil, Frame::Integer(7)]),
        ] {
            let got = decode_one(&frame.to_bytes()).unwrap().expect("complete");
            assert_eq!(got, frame);
        }
    }

    #[test]
    fn decoder_is_incremental_byte_by_byte() {
        let frame = Request::Set(b"key".to_vec(), b"value".to_vec()).to_frame();
        let bytes = frame.to_bytes();
        let mut d = Decoder::new();
        for (i, b) in bytes.iter().enumerate() {
            d.push(std::slice::from_ref(b));
            let got = d.next_frame().unwrap();
            if i + 1 < bytes.len() {
                assert!(got.is_none(), "complete after {} of {} bytes", i + 1, bytes.len());
            } else {
                assert_eq!(got, Some(frame.clone()));
            }
        }
        assert_eq!(d.buffered(), 0);
    }

    #[test]
    fn pipelined_frames_decode_in_order() {
        let mut bytes = Vec::new();
        let frames: Vec<Frame> =
            (0..10).map(|i| Request::Get(format!("k{i}").into_bytes()).to_frame()).collect();
        for f in &frames {
            f.encode(&mut bytes);
        }
        let mut d = Decoder::new();
        d.push(&bytes);
        for f in &frames {
            assert_eq!(d.next_frame().unwrap().as_ref(), Some(f));
        }
        assert_eq!(d.next_frame().unwrap(), None);
    }

    #[test]
    fn malformed_corpus_errors_never_panics() {
        // Every entry must produce a ProtoError — not a panic, not a
        // silent partial parse.
        let corpus: &[&[u8]] = &[
            b"?\r\n",                                      // unknown type byte
            b"!garbage",                                   // unknown type byte
            b"$abc\r\n",                                   // non-numeric bulk length
            b"$-2\r\n",                                    // negative non-nil length
            b"$99999999999999999999\r\n",                  // overflowing length
            b"$1000000000\r\n",                            // oversized bulk
            b"*-5\r\n",                                    // negative array arity
            b"*999999\r\n",                                // oversized array
            b"$3\r\nabcXY",                                // bad bulk terminator
            b":12a\r\n",                                   // trailing garbage in int
            b":\r\n",                                      // empty int
            b"*1\r\n*1\r\n*1\r\n*1\r\n*1\r\n*1\r\n:1\r\n", // nesting depth
        ];
        for (i, case) in corpus.iter().enumerate() {
            let got = decode_one(case);
            assert!(got.is_err(), "corpus[{i}] {:?} must error, got {got:?}", case);
        }
    }

    #[test]
    fn truncated_prefixes_ask_for_more_bytes() {
        let frame = Request::Set(b"some-key".to_vec(), b"some-value".to_vec()).to_frame();
        let bytes = frame.to_bytes();
        for cut in 0..bytes.len() {
            let got = decode_one(&bytes[..cut]);
            assert_eq!(got, Ok(None), "prefix of {cut} bytes must be incomplete");
        }
    }

    #[test]
    fn protocol_error_is_sticky() {
        let mut d = Decoder::new();
        d.push(b"?oops\r\n");
        assert!(d.next_frame().is_err());
        // Even after valid bytes arrive the decoder stays poisoned: the
        // stream position is untrustworthy.
        d.push(&Frame::ok().to_bytes());
        assert!(d.next_frame().is_err());
    }

    #[test]
    fn requests_parse_and_classify() {
        let cases: Vec<(Request, RequestClass)> = vec![
            (Request::Get(b"k".to_vec()), RequestClass::Read),
            (Request::Set(b"k".to_vec(), b"v".to_vec()), RequestClass::Write),
            (Request::Del(b"k".to_vec()), RequestClass::Write),
            (Request::MGet(vec![b"a".to_vec(), b"b".to_vec()]), RequestClass::Read),
            (
                Request::Batch(vec![
                    BatchOp::Put(b"a".to_vec(), b"1".to_vec()),
                    BatchOp::Del(b"b".to_vec()),
                ]),
                RequestClass::Write,
            ),
            (Request::Ping, RequestClass::Control),
            (Request::Info, RequestClass::Control),
            (Request::scan(b"a".to_vec(), b"z".to_vec(), 100), RequestClass::Scan),
            (Request::scan(Vec::new(), Vec::new(), 1), RequestClass::Scan),
            (
                Request::Scan {
                    start: b"a".to_vec(),
                    end: b"z".to_vec(),
                    limit: 9,
                    prefix: Some(b"ab".to_vec()),
                    count_only: true,
                },
                RequestClass::Scan,
            ),
            (Request::ScanNext(7), RequestClass::Scan),
        ];
        for (req, class) in cases {
            assert_eq!(req.class(), class);
            let round = Request::parse(&req.to_frame()).unwrap();
            assert_eq!(round, req);
        }
    }

    #[test]
    fn request_commands_are_case_insensitive() {
        let frame = Frame::Array(vec![
            Frame::Bulk(b"set".to_vec()),
            Frame::Bulk(b"k".to_vec()),
            Frame::Bulk(b"v".to_vec()),
        ]);
        assert_eq!(Request::parse(&frame).unwrap(), Request::Set(b"k".to_vec(), b"v".to_vec()));
    }

    #[test]
    fn bad_requests_are_rejected() {
        for frame in [
            Frame::Integer(1),
            Frame::Array(vec![]),
            Frame::Array(vec![Frame::Integer(1)]),
            Frame::Array(vec![Frame::Bulk(b"NOPE".to_vec())]),
            Frame::Array(vec![Frame::Bulk(b"GET".to_vec())]),
            Frame::Array(vec![Frame::Bulk(b"MGET".to_vec())]),
            Frame::Array(vec![Frame::Bulk(b"BATCH".to_vec()), Frame::Bulk(b"SET".to_vec())]),
        ] {
            assert!(matches!(Request::parse(&frame), Err(ProtoError::BadRequest(_))));
        }
    }

    #[test]
    fn scan_requests_validate_their_arguments() {
        fn req(args: &[&[u8]]) -> Result<Request, ProtoError> {
            let mut items = vec![Frame::Bulk(b"SCAN".to_vec())];
            items.extend(args.iter().map(|a| Frame::Bulk(a.to_vec())));
            Request::parse(&Frame::Array(items))
        }
        assert_eq!(
            req(&[b"a", b"z", b"50"]).unwrap(),
            Request::scan(b"a".to_vec(), b"z".to_vec(), 50)
        );
        assert_eq!(req(&[b"", b"", b"1"]).unwrap(), Request::scan(Vec::new(), Vec::new(), 1));
        assert_eq!(req(&[b"next", b"42"]).unwrap(), Request::ScanNext(42));
        // A key literally spelled NEXT still works at the 3-arg arity.
        assert_eq!(
            req(&[b"NEXT", b"z", b"5"]).unwrap(),
            Request::scan(b"NEXT".to_vec(), b"z".to_vec(), 5)
        );
        for bad in
            [&[b"a" as &[u8], b"z", b"0"][..], &[b"a", b"z", b"ten"], &[b"NEXT", b"4x2"], &[b"a"]]
        {
            assert!(matches!(req(bad), Err(ProtoError::BadRequest(_))), "{bad:?}");
        }
    }

    #[test]
    fn scan_options_parse_and_round_trip() {
        fn req(args: &[&[u8]]) -> Result<Request, ProtoError> {
            let mut items = vec![Frame::Bulk(b"SCAN".to_vec())];
            items.extend(args.iter().map(|a| Frame::Bulk(a.to_vec())));
            Request::parse(&Frame::Array(items))
        }
        let full = Request::Scan {
            start: b"a".to_vec(),
            end: b"z".to_vec(),
            limit: 10,
            prefix: Some(b"ab".to_vec()),
            count_only: true,
        };
        // Keywords are case-insensitive and order-insensitive.
        assert_eq!(req(&[b"a", b"z", b"10", b"prefix", b"ab", b"count"]).unwrap(), full);
        assert_eq!(req(&[b"a", b"z", b"10", b"COUNT", b"PREFIX", b"ab"]).unwrap(), full);
        assert_eq!(
            req(&[b"a", b"z", b"10", b"COUNT"]).unwrap(),
            Request::Scan {
                start: b"a".to_vec(),
                end: b"z".to_vec(),
                limit: 10,
                prefix: None,
                count_only: true,
            }
        );
        assert_eq!(Request::parse(&full.to_frame()).unwrap(), full);
        assert_eq!(full.payload_bytes(), 4, "prefix bytes count toward the traced payload size");
        // PREFIX without its argument, or stray tokens, are rejected.
        for bad in [&[b"a" as &[u8], b"z", b"10", b"PREFIX"][..], &[b"a", b"z", b"10", b"NOPE"]] {
            assert!(matches!(req(bad), Err(ProtoError::BadRequest(_))), "{bad:?}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn bulk_round_trips(payload in pvec(any::<u8>(), 0..512)) {
            let frame = Frame::Bulk(payload);
            let got = decode_one(&frame.to_bytes()).unwrap();
            prop_assert_eq!(got, Some(frame));
        }

        #[test]
        fn set_requests_round_trip(
            key in pvec(any::<u8>(), 1..64),
            value in pvec(any::<u8>(), 0..256),
        ) {
            let req = Request::Set(key, value);
            let mut d = Decoder::new();
            d.push(&req.to_frame().to_bytes());
            let frame = d.next_frame().unwrap().expect("complete");
            prop_assert_eq!(Request::parse(&frame).unwrap(), req);
        }

        #[test]
        fn split_feeding_never_changes_the_result(
            keys in pvec(pvec(any::<u8>(), 1..32), 1..8),
            split in any::<usize>(),
        ) {
            let req = Request::MGet(keys);
            let bytes = req.to_frame().to_bytes();
            let cut = split % bytes.len();
            let mut d = Decoder::new();
            d.push(&bytes[..cut]);
            let early = d.next_frame().unwrap();
            d.push(&bytes[cut..]);
            let frame = match early {
                Some(f) => f,
                None => d.next_frame().unwrap().expect("complete after full feed"),
            };
            prop_assert_eq!(Request::parse(&frame).unwrap(), req);
        }

        #[test]
        fn garbage_never_panics_the_decoder(bytes in pvec(any::<u8>(), 0..128)) {
            let mut d = Decoder::new();
            d.push(&bytes);
            // Drain until incomplete or error; the only failure mode under
            // test is a panic / infinite loop, bounded by the byte count.
            for _ in 0..=bytes.len() {
                match d.next_frame() {
                    Ok(Some(_)) => continue,
                    Ok(None) | Err(_) => break,
                }
            }
        }
    }
}
