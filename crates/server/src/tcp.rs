//! `std::net` TCP front-end over [`ServerCore`].
//!
//! Thread layout (no async runtime, no external deps):
//!
//! ```text
//! accept thread ──spawns──► per-conn reader ──Msg──►┐
//!                           per-conn writer ◄─bytes─┤ engine thread
//!                                                   │ (owns ServerCore)
//! ```
//!
//! The engine thread is the only one touching the core, so the serving
//! logic stays exactly the single-threaded logic the loopback transport
//! exercises deterministically. Readers forward raw bytes; the engine
//! decodes, admits and executes, then — whenever its inbox goes quiet —
//! flushes the group-commit queue and pushes each connection's resolved
//! replies to its writer. Batching falls out naturally: bytes from many
//! connections pile up while a group commits, and the next flush
//! coalesces their writes.
//!
//! Shutdown is graceful: stop accepting, let readers wind down, answer
//! every request already received, then close. In-flight tickets are
//! drained, not dropped.

use std::collections::HashMap;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use noblsm::{Error, Result};

use crate::core::{ConnId, ServerCore, ServerOptions};

/// How long a reader blocks in `read()` before re-checking the shutdown
/// flag. Bounds shutdown latency, not request latency.
const READ_TICK: Duration = Duration::from_millis(25);

/// Reader/accept → engine messages. `u64` is the per-process connection
/// token minted by the accept thread.
enum Msg {
    /// New connection; the sender half feeds its writer thread.
    Open(u64, mpsc::Sender<Vec<u8>>),
    /// Raw request bytes from the connection.
    Data(u64, Vec<u8>),
    /// Peer closed (EOF/error) or reader wound down on shutdown.
    Closed(u64),
}

/// A running TCP server; dropping it without [`shutdown`](TcpServer::shutdown)
/// aborts non-gracefully (threads are detached).
pub struct TcpServer {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    engine: Option<JoinHandle<Result<ServerCore>>>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl TcpServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`), opens the store and spawns
    /// the accept + engine threads.
    ///
    /// # Errors
    ///
    /// Bind failures as [`Error::Io`]; store open failures pass through.
    pub fn bind(addr: &str, opts: ServerOptions) -> Result<TcpServer> {
        let core = ServerCore::open(opts)?;
        Self::serve(addr, core)
    }

    /// Like [`bind`](TcpServer::bind) but serving an already-open core
    /// (pre-loaded data, custom trace/metrics wiring).
    ///
    /// # Errors
    ///
    /// Bind failures as [`Error::Io`].
    pub fn serve(addr: &str, core: ServerCore) -> Result<TcpServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let conn_threads = Arc::new(Mutex::new(Vec::new()));
        let (tx, rx) = mpsc::channel::<Msg>();

        let engine = std::thread::spawn(move || engine_loop(core, rx));
        let accept = {
            let stop = Arc::clone(&stop);
            let conn_threads = Arc::clone(&conn_threads);
            std::thread::spawn(move || accept_loop(listener, tx, stop, conn_threads))
        };
        Ok(TcpServer {
            addr: local,
            stop,
            accept: Some(accept),
            engine: Some(engine),
            conn_threads,
        })
    }

    /// The bound address (use with port 0 to discover the ephemeral port).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Graceful shutdown: stop accepting, answer everything already
    /// received, close all connections, join all threads. Returns the
    /// core (final stats, store inspection).
    ///
    /// # Errors
    ///
    /// Propagates the first engine-side store failure, if any.
    pub fn shutdown(mut self) -> Result<ServerCore> {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock accept(): it is parked waiting for a connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // Readers exit on the flag (bounded by READ_TICK), dropping their
        // engine senders; the engine then drains, replies and returns;
        // writers exit once the engine drops their channels.
        let engine = self.engine.take().expect("shutdown runs once");
        let core = engine.join().map_err(|_| Error::Usage("server engine panicked".into()))??;
        let handles = std::mem::take(&mut *self.conn_threads.lock().expect("no poisoned lock"));
        for h in handles {
            let _ = h.join();
        }
        Ok(core)
    }
}

fn accept_loop(
    listener: TcpListener,
    tx: mpsc::Sender<Msg>,
    stop: Arc<AtomicBool>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    let mut next_token: u64 = 0;
    while !stop.load(Ordering::SeqCst) {
        let Ok((stream, _)) = listener.accept() else { continue };
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let token = next_token;
        next_token += 1;
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(READ_TICK));
        let Ok(write_half) = stream.try_clone() else { continue };
        let (out_tx, out_rx) = mpsc::channel::<Vec<u8>>();
        if tx.send(Msg::Open(token, out_tx)).is_err() {
            break;
        }
        let reader = {
            let tx = tx.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || reader_loop(token, stream, tx, stop))
        };
        let writer = std::thread::spawn(move || writer_loop(write_half, out_rx));
        let mut guard = conn_threads.lock().expect("no poisoned lock");
        guard.push(reader);
        guard.push(writer);
    }
    // Dropping `tx` here lets the engine observe disconnection once every
    // reader has wound down too.
}

fn reader_loop(token: u64, mut stream: TcpStream, tx: mpsc::Sender<Msg>, stop: Arc<AtomicBool>) {
    use std::io::Read;
    let mut buf = vec![0u8; 64 << 10];
    loop {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                if tx.send(Msg::Data(token, buf[..n].to_vec())).is_err() {
                    return;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        }
    }
    let _ = tx.send(Msg::Closed(token));
}

fn writer_loop(mut stream: TcpStream, rx: mpsc::Receiver<Vec<u8>>) {
    use std::io::Write;
    while let Ok(chunk) = rx.recv() {
        if stream.write_all(&chunk).is_err() {
            return;
        }
    }
    let _ = stream.shutdown(std::net::Shutdown::Write);
}

/// One registered connection on the engine side.
struct Registered {
    conn: ConnId,
    out: mpsc::Sender<Vec<u8>>,
    /// Reader reported EOF; close once remaining replies are pushed.
    closed: bool,
}

fn engine_loop(mut core: ServerCore, rx: mpsc::Receiver<Msg>) -> Result<ServerCore> {
    let mut conns: HashMap<u64, Registered> = HashMap::new();
    'serve: loop {
        // Block for one message, then opportunistically batch whatever
        // else is already queued: the flush below then group-commits
        // writes from every connection that arrived in the window.
        let first = match rx.recv() {
            Ok(m) => m,
            Err(_) => break 'serve,
        };
        let mut inbox = vec![first];
        while let Ok(m) = rx.try_recv() {
            inbox.push(m);
        }
        for msg in inbox {
            match msg {
                Msg::Open(token, out) => {
                    let conn = core.connect();
                    conns.insert(token, Registered { conn, out, closed: false });
                }
                Msg::Data(token, bytes) => {
                    if let Some(reg) = conns.get(&token) {
                        core.feed(reg.conn, &bytes)?;
                    }
                }
                Msg::Closed(token) => {
                    if let Some(reg) = conns.get_mut(&token) {
                        reg.closed = true;
                    }
                }
            }
        }
        pump_outputs(&mut core, &mut conns)?;
    }
    // All senders gone (accept thread exited, every reader wound down):
    // answer whatever is still parked, then close every connection.
    pump_outputs(&mut core, &mut conns)?;
    for (_, reg) in conns.drain() {
        core.disconnect(reg.conn);
    }
    Ok(core)
}

/// Flushes the store and pushes each connection's resolved replies to its
/// writer; reaps connections that are closed or poisoned with nothing
/// left to say.
fn pump_outputs(core: &mut ServerCore, conns: &mut HashMap<u64, Registered>) -> Result<()> {
    core.flush()?;
    let mut reap = Vec::new();
    for (&token, reg) in conns.iter_mut() {
        let out = core.take_output(reg.conn);
        if !out.is_empty() {
            // A send failure means the writer died (peer gone): treat as
            // closed, replies are undeliverable.
            if reg.out.send(out).is_err() {
                reg.closed = true;
            }
        }
        let drained = !core.output_blocked(reg.conn) && core.pending_replies(reg.conn) == 0;
        if (reg.closed || core.is_poisoned(reg.conn)) && drained {
            reap.push(token);
        }
    }
    for token in reap {
        if let Some(reg) = conns.remove(&token) {
            core.disconnect(reg.conn);
            // Dropping `reg.out` ends the writer thread, which closes the
            // write half after the last queued chunk is on the wire.
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::client::Client;
    use crate::transport::TcpTransport;

    use super::*;

    #[test]
    fn tcp_round_trip_and_graceful_shutdown() {
        let server = TcpServer::bind("127.0.0.1:0", ServerOptions::default()).unwrap();
        let addr = server.local_addr().to_string();
        let mut c = Client::new(TcpTransport::connect(&addr).unwrap());
        c.ping().unwrap();
        c.set(b"k", b"v").unwrap();
        assert_eq!(c.get(b"k").unwrap(), Some(b"v".to_vec()));
        drop(c);
        let core = server.shutdown().unwrap();
        assert_eq!(core.store().pending(), 0, "shutdown drains the queue");
    }
}
