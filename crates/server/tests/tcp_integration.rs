//! TCP serving integration: many concurrent real-socket connections
//! against one engine thread, checking the acceptance criteria head-on —
//! zero lost or reordered-per-connection replies under a mixed pipelined
//! GET/SET workload, explicit BUSY (never a hang) when the in-flight
//! budget is exceeded, and a graceful shutdown that drains in-flight
//! requests.

use nob_server::client::Client;
use nob_server::core::ServerOptions;
use nob_server::proto::{Frame, Request};
use nob_server::tcp::TcpServer;
use nob_server::transport::TcpTransport;
use nob_store::StoreOptions;

fn server(max_inflight: usize, pipeline_per_conn: usize) -> TcpServer {
    let opts = ServerOptions {
        store: StoreOptions { shards: 4, ..StoreOptions::default() },
        max_inflight,
        pipeline_per_conn,
        ..ServerOptions::default()
    };
    TcpServer::bind("127.0.0.1:0", opts).expect("bind ephemeral port")
}

#[test]
fn sixty_four_connections_mixed_workload_no_lost_or_reordered_replies() {
    const CONNS: usize = 64;
    const OPS: usize = 24;

    let server = server(4096, 256);
    let addr = server.local_addr().to_string();

    let workers: Vec<_> = (0..CONNS)
        .map(|cid| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut c = Client::new(TcpTransport::connect(&addr).expect("connect"));
                // Pipeline a mixed SET/GET stream; per-connection keys so
                // the expected GET values are exact.
                for i in 0..OPS {
                    let key = format!("c{cid}-k{i}").into_bytes();
                    let val = format!("c{cid}-v{i}").into_bytes();
                    c.send(&Request::Set(key.clone(), val)).expect("send SET");
                    c.send(&Request::Get(key)).expect("send GET");
                }
                // Replies must come back 2*OPS strong, strictly in request
                // order: +OK then the just-written value, repeated.
                for i in 0..OPS {
                    let set_reply = c.recv_reply().expect("SET reply");
                    assert_eq!(set_reply, Frame::ok(), "conn {cid} op {i}");
                    let get_reply = c.recv_reply().expect("GET reply");
                    let want = format!("c{cid}-v{i}").into_bytes();
                    assert_eq!(get_reply, Frame::Bulk(want), "conn {cid} op {i}");
                }
                assert_eq!(c.outstanding(), 0);
            })
        })
        .collect();
    for w in workers {
        w.join().expect("worker panicked");
    }

    let core = server.shutdown().expect("graceful shutdown");
    assert_eq!(core.store().pending(), 0, "queue drained");
}

#[test]
fn busy_pushback_instead_of_hang_when_budget_exceeded() {
    // A budget of one write ticket: a pipelined burst sent as one TCP
    // segment must get explicit -BUSY replies for the overflow, and every
    // request must be answered (no hang, no drop).
    const BURST: usize = 16;
    let server = server(1, 256);
    let addr = server.local_addr().to_string();

    // One write_all for the whole burst so the engine sees it in a single
    // read and cannot interleave flushes between the requests.
    let mut burst = Vec::new();
    for i in 0..BURST {
        Request::Set(format!("k{i}").into_bytes(), b"v".to_vec()).to_frame().encode(&mut burst);
    }
    use nob_server::transport::Transport as _;
    let mut transport = TcpTransport::connect(&addr).expect("connect");
    transport.send(&burst).expect("send burst");
    let mut ok = 0usize;
    let mut busy = 0usize;
    let mut decoder = nob_server::proto::Decoder::new();
    let mut got = 0usize;
    let mut bytes = Vec::new();
    while got < BURST {
        let n = transport.recv(&mut bytes).expect("recv");
        assert!(n > 0, "server closed with replies outstanding");
        decoder.push(&bytes[bytes.len() - n..]);
        while let Some(frame) = decoder.next_frame().expect("well-formed reply stream") {
            got += 1;
            match frame {
                f if f.is_busy() => busy += 1,
                f if f == Frame::ok() => ok += 1,
                other => panic!("unexpected reply {other:?}"),
            }
        }
    }
    let mut c = Client::new(transport);
    assert!(ok >= 1, "at least the first write is admitted");
    assert!(busy >= 1, "burst past the budget must see BUSY, got {ok} ok / {busy} busy");

    // The connection stays usable after pushback.
    c.set(b"after", b"busy").expect("post-BUSY write");
    assert_eq!(c.get(b"after").expect("read back"), Some(b"busy".to_vec()));
    server.shutdown().expect("graceful shutdown");
}

#[test]
fn graceful_shutdown_drains_in_flight_requests() {
    let server = server(4096, 256);
    let addr = server.local_addr().to_string();

    // Pipeline writes and immediately start shutdown without reading
    // replies first: the server must still answer everything it received.
    let mut c = Client::new(TcpTransport::connect(&addr).expect("connect"));
    const N: usize = 32;
    for i in 0..N {
        c.send(&Request::Set(format!("s{i}").into_bytes(), b"v".to_vec())).expect("send");
    }
    // Collect all replies, then shut down: every write is acknowledged.
    for i in 0..N {
        assert_eq!(c.recv_reply().expect("reply"), Frame::ok(), "write {i}");
    }
    let core = server.shutdown().expect("graceful shutdown");
    assert_eq!(core.store().pending(), 0);
    let stats = core.store().stats();
    assert_eq!(stats.batches, N as u64, "every received write committed");
}

#[test]
fn malformed_bytes_get_an_error_reply_then_the_connection_closes() {
    use std::io::{Read, Write};

    let server = server(4096, 256);
    let addr = server.local_addr();

    let mut raw = std::net::TcpStream::connect(addr).expect("connect");
    raw.write_all(b"?this is not RESP\r\n").expect("write garbage");
    let mut reply = Vec::new();
    raw.read_to_end(&mut reply).expect("server replies then closes");
    let text = String::from_utf8_lossy(&reply);
    assert!(text.starts_with("-ERR"), "protocol error reply, got {text:?}");
    server.shutdown().expect("graceful shutdown");
}
