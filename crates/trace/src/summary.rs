//! Per-run trace summaries: per-class latency stats plus the top stalls
//! with their causal chain, in a byte-stable JSON form.

use crate::event::{EventClass, SpanEvent, StallRecord};
use nob_sim::Nanos;

/// Latency statistics for one event class. All durations are integer
/// nanoseconds so the JSON form is bit-for-bit reproducible under fixed
/// seeds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassStats {
    /// The class these stats describe.
    pub class: EventClass,
    /// Spans recorded.
    pub count: u64,
    /// Total payload bytes across the class's spans.
    pub bytes: u64,
    /// Sum of span durations.
    pub total_ns: u64,
    /// Exact minimum span duration.
    pub min_ns: u64,
    /// Exact maximum span duration.
    pub max_ns: u64,
    /// Median (log-bucketed, ≤ 3.1% high).
    pub p50_ns: u64,
    /// 95th percentile.
    pub p95_ns: u64,
    /// 99th percentile.
    pub p99_ns: u64,
    /// 99.9th percentile.
    pub p999_ns: u64,
    /// Trace id of the slowest *traced* span of this class (0 when the
    /// class recorded no traced spans) — the exemplar linking the
    /// histogram tail to a concrete span tree.
    pub exemplar_trace: u64,
}

/// A complete, serialisable snapshot of a sink at end of run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSummary {
    /// Total spans emitted.
    pub events: u64,
    /// Spans evicted from the ring (still counted in histograms).
    pub dropped: u64,
    /// Non-empty classes, in discriminant order.
    pub classes: Vec<ClassStats>,
    /// Total foreground stalls.
    pub stall_count: u64,
    /// Total time spent stalled.
    pub stall_total_ns: u64,
    /// Longest stalls, longest first (at most [`TraceSummary::TOP_STALLS`]).
    pub top_stalls: Vec<StallRecord>,
}

fn push_cause(out: &mut String, key: &str, cause: &Option<SpanEvent>, pad: &str) {
    match cause {
        None => out.push_str(&format!("{pad}\"{key}\": null")),
        Some(c) => out.push_str(&format!(
            "{pad}\"{key}\": {{ \"class\": \"{}\", \"seq\": {}, \"start_ns\": {}, \"end_ns\": {} }}",
            c.class.name(),
            c.seq,
            c.start.as_nanos(),
            c.end.as_nanos()
        )),
    }
}

impl TraceSummary {
    /// How many stalls a summary retains.
    pub const TOP_STALLS: usize = 10;

    /// Stats for one class, if it recorded any spans.
    pub fn class(&self, class: EventClass) -> Option<&ClassStats> {
        self.classes.iter().find(|c| c.class == class)
    }

    /// Deterministic JSON (integer nanoseconds only; classes in
    /// discriminant order) — the golden-file / CI-baseline format.
    pub fn to_json(&self) -> String {
        self.to_json_indented(0)
    }

    /// [`TraceSummary::to_json`] with every line indented `level` extra
    /// two-space steps, for embedding inside a larger document.
    pub fn to_json_indented(&self, level: usize) -> String {
        let p = "  ".repeat(level);
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("{p}  \"events\": {},\n", self.events));
        out.push_str(&format!("{p}  \"dropped\": {},\n", self.dropped));
        out.push_str(&format!("{p}  \"classes\": {{"));
        for (i, c) in self.classes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n{p}    \"{}\": {{ \"count\": {}, \"bytes\": {}, \"total_ns\": {}, \"min_ns\": {}, \"max_ns\": {}, \"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}, \"exemplar_trace\": {} }}",
                c.class.name(),
                c.count,
                c.bytes,
                c.total_ns,
                c.min_ns,
                c.max_ns,
                c.p50_ns,
                c.p95_ns,
                c.p99_ns,
                c.p999_ns,
                c.exemplar_trace
            ));
        }
        if !self.classes.is_empty() {
            out.push('\n');
            out.push_str(&p);
            out.push_str("  ");
        }
        out.push_str("},\n");
        out.push_str(&format!("{p}  \"stalls\": {{\n"));
        out.push_str(&format!("{p}    \"count\": {},\n", self.stall_count));
        out.push_str(&format!("{p}    \"total_ns\": {},\n", self.stall_total_ns));
        out.push_str(&format!("{p}    \"top\": ["));
        for (i, s) in self.top_stalls.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n{p}      {{ \"kind\": \"{}\", \"start_ns\": {}, \"end_ns\": {}, \"dur_ns\": {},\n",
                s.kind.name(),
                s.start.as_nanos(),
                s.end.as_nanos(),
                s.duration().as_nanos()
            ));
            push_cause(&mut out, "cause_commit", &s.cause_commit, &format!("{p}        "));
            out.push_str(",\n");
            push_cause(&mut out, "cause_flush", &s.cause_flush, &format!("{p}        "));
            out.push_str(" }");
        }
        if !self.top_stalls.is_empty() {
            out.push('\n');
            out.push_str(&p);
            out.push_str("    ");
        }
        out.push_str("]\n");
        out.push_str(&format!("{p}  }}\n"));
        out.push_str(&p);
        out.push('}');
        out
    }

    /// Human-readable report: a per-class percentile table followed by
    /// the top stalls with their causal chain.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "trace: {} events ({} evicted from ring), {} stalls totalling {}\n\n",
            self.events,
            self.dropped,
            self.stall_count,
            Nanos::from_nanos(self.stall_total_ns)
        ));
        if self.dropped > 0 {
            out.push_str(&format!(
                "warning: {} spans were evicted from the ring; span trees and \
                 exports may be incomplete (raise the ring capacity)\n\n",
                self.dropped
            ));
        }
        out.push_str(&format!(
            "| {:<20} | {:>8} | {:>10} | {:>10} | {:>10} | {:>10} | {:>10} |\n",
            "class", "count", "p50", "p95", "p99", "p999", "max"
        ));
        out.push_str(&format!(
            "|{:-<22}|{:-<10}|{:-<12}|{:-<12}|{:-<12}|{:-<12}|{:-<12}|\n",
            "", "", "", "", "", "", ""
        ));
        for c in &self.classes {
            out.push_str(&format!(
                "| {:<20} | {:>8} | {:>10} | {:>10} | {:>10} | {:>10} | {:>10} |\n",
                c.class.name(),
                c.count,
                format!("{}", Nanos::from_nanos(c.p50_ns)),
                format!("{}", Nanos::from_nanos(c.p95_ns)),
                format!("{}", Nanos::from_nanos(c.p99_ns)),
                format!("{}", Nanos::from_nanos(c.p999_ns)),
                format!("{}", Nanos::from_nanos(c.max_ns)),
            ));
        }
        if self.top_stalls.is_empty() {
            out.push_str("\nno write stalls recorded\n");
            return out;
        }
        out.push_str(&format!("\ntop {} stalls (longest first):\n", self.top_stalls.len()));
        for (i, s) in self.top_stalls.iter().enumerate() {
            out.push_str(&format!(
                "{:>3}. {:<9} {:>10} at t={}",
                i + 1,
                s.kind.name(),
                format!("{}", s.duration()),
                s.start
            ));
            if let Some(c) = &s.cause_commit {
                out.push_str(&format!(
                    "  <- {} #{} [t={}, {}]",
                    c.class.name(),
                    c.seq,
                    c.start,
                    c.duration()
                ));
            }
            if let Some(f) = &s.cause_flush {
                out.push_str(&format!(
                    "  <- {} #{} [t={}, {}]",
                    f.class.name(),
                    f.seq,
                    f.start,
                    f.duration()
                ));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::StallKind;

    fn sample() -> TraceSummary {
        TraceSummary {
            events: 3,
            dropped: 0,
            classes: vec![ClassStats {
                class: EventClass::SsdWrite,
                count: 2,
                bytes: 8192,
                total_ns: 3000,
                min_ns: 1000,
                max_ns: 2000,
                p50_ns: 1000,
                p95_ns: 2000,
                p99_ns: 2000,
                p999_ns: 2000,
                exemplar_trace: 0,
            }],
            stall_count: 1,
            stall_total_ns: 500,
            top_stalls: vec![StallRecord {
                kind: StallKind::Memtable,
                start: Nanos::from_nanos(100),
                end: Nanos::from_nanos(600),
                cause_commit: Some(SpanEvent {
                    seq: 1,
                    class: EventClass::Checkpoint,
                    start: Nanos::from_nanos(50),
                    end: Nanos::from_nanos(90),
                    bytes: 0,
                    trace: 0,
                    span: 0,
                    parent: 0,
                }),
                cause_flush: None,
            }],
        }
    }

    #[test]
    fn json_is_deterministic_and_integer_only() {
        let s = sample();
        let a = s.to_json();
        let b = s.to_json();
        assert_eq!(a, b);
        assert!(a.contains("\"ssd_write\""));
        assert!(a.contains("\"p99_ns\": 2000"));
        assert!(a.contains("\"kind\": \"memtable\""));
        assert!(a.contains("\"cause_flush\": null"));
        assert!(!a.contains('.'), "summary JSON must not contain floats:\n{a}");
    }

    #[test]
    fn indented_json_shifts_every_line() {
        let s = sample();
        let nested = s.to_json_indented(2);
        for line in nested.lines().skip(1) {
            assert!(line.starts_with("    "), "line not indented: {line:?}");
        }
    }

    #[test]
    fn render_mentions_percentiles_and_causes() {
        let text = sample().render();
        assert!(text.contains("p999"));
        assert!(text.contains("ssd_write"));
        assert!(text.contains("memtable"));
        assert!(text.contains("checkpoint"));
    }

    #[test]
    fn empty_summary_renders_and_serialises() {
        let s = TraceSummary {
            events: 0,
            dropped: 0,
            classes: vec![],
            stall_count: 0,
            stall_total_ns: 0,
            top_stalls: vec![],
        };
        assert!(s.to_json().contains("\"classes\": {}"));
        assert!(s.render().contains("no write stalls"));
    }
}
