//! Span-tree reconstruction and commit critical-path decomposition.
//!
//! Causal tracing ([`TraceCtx`](crate::event::TraceCtx)) gives every
//! span a `trace / span / parent` identity; this module turns the flat
//! ring back into per-request trees and decomposes each traced request's
//! send→durable(→replicated) window into named, exactly-summing
//! segments — the paper's "where does commit latency go" question,
//! answered per request instead of per class.
//!
//! Attribution is *deepest-covering-span*: the request window is
//! partitioned at every span boundary, and each slice is charged to the
//! segment of the deepest span covering it. Because the slices partition
//! the window, the per-segment nanoseconds sum to the request's total
//! latency exactly — no double counting across nested spans.

use std::collections::{BTreeSet, HashMap, HashSet};

use crate::event::{EventClass, SpanEvent};
use crate::hist::Histogram;
use crate::sink::{SpanLink, TraceSink};
use nob_sim::Nanos;

/// Number of critical-path segments.
pub const N_SEGMENTS: usize = 10;

/// Segment names, in reporting order. `admission` is the request's own
/// self-time (queueing before the group picked it up, reply resolution),
/// `other` is any slice no span covers (e.g. a gap between grafted
/// subtrees).
pub const SEGMENTS: [&str; N_SEGMENTS] = [
    "admission",
    "group_wait",
    "wal_write",
    "stall",
    "journal_wait",
    "flush",
    "ship",
    "apply",
    "ack",
    "other",
];

const SEG_ADMISSION: usize = 0;
const SEG_GROUP_WAIT: usize = 1;
const SEG_WAL_WRITE: usize = 2;
const SEG_STALL: usize = 3;
const SEG_JOURNAL_WAIT: usize = 4;
const SEG_FLUSH: usize = 5;
const SEG_SHIP: usize = 6;
const SEG_APPLY: usize = 7;
const SEG_ACK: usize = 8;
const SEG_OTHER: usize = 9;

/// The segment a class is charged to, or `None` for classes that
/// inherit their enclosing span's segment (raw device commands and
/// write-back, which mean different things under the WAL than under the
/// journal).
fn segment_of(class: EventClass) -> Option<usize> {
    match class {
        EventClass::ServerRead
        | EventClass::ServerWrite
        | EventClass::ServerControl
        | EventClass::ServerScan => Some(SEG_ADMISSION),
        EventClass::GroupCommit => Some(SEG_GROUP_WAIT),
        EventClass::EnginePut => Some(SEG_WAL_WRITE),
        EventClass::WriteStall => Some(SEG_STALL),
        EventClass::JournalCommit | EventClass::Checkpoint | EventClass::FastCommit => {
            Some(SEG_JOURNAL_WAIT)
        }
        EventClass::SsdFlush | EventClass::SsdBgFlush => Some(SEG_FLUSH),
        EventClass::ReplShip => Some(SEG_SHIP),
        EventClass::ReplApply => Some(SEG_APPLY),
        EventClass::ReplAck => Some(SEG_ACK),
        EventClass::EngineGet => Some(SEG_OTHER),
        _ => None,
    }
}

/// One node of a reconstructed span tree.
#[derive(Debug, Clone)]
pub struct TraceNode {
    /// The span itself.
    pub event: SpanEvent,
    /// Whether this subtree was grafted in via a cross-trace link (the
    /// group-commit span a follower request waited on, owned by the
    /// leader's trace).
    pub grafted: bool,
    /// Child spans, by start instant then emission order.
    pub children: Vec<TraceNode>,
}

impl TraceNode {
    /// Latest completion instant anywhere in the subtree (a replication
    /// ack ends after the root's durable instant).
    pub fn max_end(&self) -> Nanos {
        self.children.iter().map(TraceNode::max_end).fold(self.event.end, Nanos::max)
    }

    /// Number of spans in the subtree.
    pub fn len(&self) -> usize {
        1 + self.children.iter().map(TraceNode::len).sum::<usize>()
    }

    /// Whether the subtree is a lone span. Always false (a node holds
    /// at least its own span); present for clippy's `len`-without-
    /// `is_empty` convention.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Indented one-line-per-span rendering of the subtree.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(0, &mut out);
        out
    }

    fn render_into(&self, depth: usize, out: &mut String) {
        let e = &self.event;
        out.push_str(&"  ".repeat(depth));
        out.push_str(&format!("{} #{} [t={}, {}]", e.class.name(), e.span, e.start, e.duration()));
        if e.bytes > 0 {
            out.push_str(&format!(" {}B", e.bytes));
        }
        if self.grafted {
            out.push_str(" (via link)");
        }
        out.push('\n');
        for c in &self.children {
            c.render_into(depth + 1, out);
        }
    }
}

/// An indexed snapshot of a sink's retained spans and links, ready to
/// answer tree queries.
#[derive(Debug)]
pub struct TraceForest {
    events: Vec<SpanEvent>,
    /// span id → index into `events`.
    by_span: HashMap<u64, usize>,
    /// parent span id → child indexes (emission order).
    children: HashMap<u64, Vec<usize>>,
    /// from span id → grafted target span ids (link order).
    links: HashMap<u64, Vec<u64>>,
}

impl TraceForest {
    /// Indexes a snapshot (see [`TraceSink::snapshot`]).
    pub fn new(events: Vec<SpanEvent>, links: Vec<SpanLink>) -> Self {
        let mut by_span = HashMap::new();
        let mut children: HashMap<u64, Vec<usize>> = HashMap::new();
        for (i, e) in events.iter().enumerate() {
            if e.span == 0 {
                continue;
            }
            by_span.insert(e.span, i);
            if e.parent != 0 {
                children.entry(e.parent).or_default().push(i);
            }
        }
        let mut link_map: HashMap<u64, Vec<u64>> = HashMap::new();
        for l in links {
            link_map.entry(l.from).or_default().push(l.to);
        }
        TraceForest { events, by_span, children, links: link_map }
    }

    /// Root spans (spans that started their own trace) still retained in
    /// the ring, oldest first.
    pub fn roots(&self) -> Vec<SpanEvent> {
        let mut roots: Vec<SpanEvent> =
            self.events.iter().filter(|e| e.is_root()).copied().collect();
        roots.sort_by_key(|e| (e.start, e.seq));
        roots
    }

    /// Reconstructs the tree of `trace`, if its root span is still in
    /// the ring. Grafted subtrees (group fan-in links) are included; a
    /// span reachable twice (or a link cycle) is expanded only once.
    pub fn tree(&self, trace: u64) -> Option<TraceNode> {
        let root = *self.by_span.get(&trace)?;
        if !self.events[root].is_root() {
            return None;
        }
        let mut visited = HashSet::new();
        self.build(root, false, &mut visited)
    }

    fn build(&self, idx: usize, grafted: bool, visited: &mut HashSet<u64>) -> Option<TraceNode> {
        let event = self.events[idx];
        if !visited.insert(event.span) {
            return None;
        }
        let mut kids: Vec<(bool, usize)> = Vec::new();
        if let Some(direct) = self.children.get(&event.span) {
            kids.extend(direct.iter().map(|&i| (false, i)));
        }
        if let Some(linked) = self.links.get(&event.span) {
            kids.extend(linked.iter().filter_map(|to| self.by_span.get(to)).map(|&i| (true, i)));
        }
        let mut children: Vec<TraceNode> =
            kids.into_iter().filter_map(|(g, i)| self.build(i, g, visited)).collect();
        children.sort_by_key(|n| (n.event.start, n.event.seq));
        Some(TraceNode { event, grafted, children })
    }
}

/// One traced request's critical-path decomposition: its full window
/// `[start, start + total_ns]` partitioned into the named segments.
/// The segments sum to `total_ns` exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CriticalPath {
    /// The request's trace id.
    pub trace: u64,
    /// Class of the root span (usually `server_write`).
    pub root_class: EventClass,
    /// Request receipt instant.
    pub start: Nanos,
    /// Receipt → latest completion anywhere in the tree (the replicated
    /// ack when replication is traced, the durable instant otherwise).
    pub total_ns: u64,
    /// Nanoseconds charged to each segment, indexed like [`SEGMENTS`].
    pub segments: [u64; N_SEGMENTS],
}

impl CriticalPath {
    /// Decomposes one reconstructed tree.
    pub fn from_tree(root: &TraceNode) -> CriticalPath {
        let lo = root.event.start;
        let hi = root.max_end().max(lo);
        // Every span flattened to (depth, segment, clamped window).
        let mut covers: Vec<(usize, usize, Nanos, Nanos)> = Vec::new();
        let root_seg = segment_of(root.event.class).unwrap_or(SEG_OTHER);
        flatten(root, 0, root_seg, lo, hi, &mut covers);
        let mut cuts: BTreeSet<Nanos> = BTreeSet::new();
        cuts.insert(lo);
        cuts.insert(hi);
        for &(_, _, s, e) in &covers {
            cuts.insert(s);
            cuts.insert(e);
        }
        let mut segments = [0u64; N_SEGMENTS];
        let cuts: Vec<Nanos> = cuts.into_iter().collect();
        for w in cuts.windows(2) {
            let (a, b) = (w[0], w[1]);
            // Deepest span covering the slice; ties (overlapping spans
            // at one depth, e.g. a repl ack round-trip overlapping the
            // ship span beside it) go to the first in DFS order, so the
            // enclosing span keeps only what nothing else claims.
            let mut seg = SEG_OTHER;
            let mut best = None;
            for &(depth, s_seg, s, e) in &covers {
                if s <= a && e >= b && best.is_none_or(|d| depth > d) {
                    best = Some(depth);
                    seg = s_seg;
                }
            }
            segments[seg] += (b - a).as_nanos();
        }
        CriticalPath {
            trace: root.event.trace,
            root_class: root.event.class,
            start: lo,
            total_ns: (hi - lo).as_nanos(),
            segments,
        }
    }

    /// Nanoseconds charged to a segment, by name (0 for unknown names).
    pub fn segment(&self, name: &str) -> u64 {
        SEGMENTS.iter().position(|&s| s == name).map_or(0, |i| self.segments[i])
    }
}

fn flatten(
    node: &TraceNode,
    depth: usize,
    inherited: usize,
    lo: Nanos,
    hi: Nanos,
    out: &mut Vec<(usize, usize, Nanos, Nanos)>,
) {
    // Inside a replication stage, non-repl work is that stage's work:
    // the follower's engine put (and the journal/FLUSH under it) is how
    // an apply spends its time, not a second `wal_write` on this
    // request's path. Nested repl stages keep their own segment (the
    // apply under its ship).
    let own = segment_of(node.event.class);
    let repl_stage = matches!(own, Some(SEG_SHIP | SEG_APPLY | SEG_ACK));
    let seg = if matches!(inherited, SEG_SHIP | SEG_APPLY) && !repl_stage {
        inherited
    } else {
        own.unwrap_or(inherited)
    };
    let s = node.event.start.max(lo).min(hi);
    let e = node.event.end.max(lo).min(hi);
    if e > s {
        out.push((depth, seg, s, e));
    }
    for c in &node.children {
        flatten(c, depth + 1, seg, lo, hi, out);
    }
}

/// Aggregate stats for one segment across many critical paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentStats {
    /// Segment name (one of [`SEGMENTS`]).
    pub name: &'static str,
    /// Paths in which the segment is non-zero.
    pub count: u64,
    /// Total nanoseconds across all paths.
    pub total_ns: u64,
    /// Median of the non-zero per-path values.
    pub p50_ns: u64,
    /// 99th percentile of the non-zero per-path values.
    pub p99_ns: u64,
}

/// The critical-path decomposition of every traced request a sink still
/// retains: per-segment aggregates plus the slowest requests with their
/// full trees.
#[derive(Debug, Clone)]
pub struct CriticalSummary {
    /// Traced requests decomposed.
    pub paths: u64,
    /// Total request nanoseconds across all paths.
    pub total_ns: u64,
    /// Per-segment aggregates, in [`SEGMENTS`] order, empty segments
    /// omitted.
    pub segments: Vec<SegmentStats>,
    /// Slowest requests, slowest first, each with its rendered tree.
    pub slowest: Vec<(CriticalPath, String)>,
}

impl CriticalSummary {
    /// Decomposes every root in the forest, keeping the `top_n` slowest
    /// trees for display.
    pub fn collect(forest: &TraceForest, top_n: usize) -> CriticalSummary {
        let mut paths: Vec<CriticalPath> = Vec::new();
        let mut trees: HashMap<u64, TraceNode> = HashMap::new();
        for root in forest.roots() {
            let Some(tree) = forest.tree(root.trace) else { continue };
            let path = CriticalPath::from_tree(&tree);
            trees.insert(path.trace, tree);
            paths.push(path);
        }
        let mut hists: Vec<Histogram> = (0..N_SEGMENTS).map(|_| Histogram::new()).collect();
        let mut totals = [0u64; N_SEGMENTS];
        let mut counts = [0u64; N_SEGMENTS];
        let mut total_ns = 0u64;
        for p in &paths {
            total_ns += p.total_ns;
            for (i, &v) in p.segments.iter().enumerate() {
                if v > 0 {
                    hists[i].record(v);
                    totals[i] += v;
                    counts[i] += 1;
                }
            }
        }
        let segments = (0..N_SEGMENTS)
            .filter(|&i| counts[i] > 0)
            .map(|i| {
                let (p50, _, p99, _) = hists[i].percentiles();
                SegmentStats {
                    name: SEGMENTS[i],
                    count: counts[i],
                    total_ns: totals[i],
                    p50_ns: p50,
                    p99_ns: p99,
                }
            })
            .collect();
        let mut by_latency = paths;
        by_latency.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.trace.cmp(&b.trace)));
        let slowest =
            by_latency.iter().take(top_n).map(|p| (*p, trees[&p.trace].render())).collect();
        CriticalSummary { paths: by_latency.len() as u64, total_ns, segments, slowest }
    }

    /// Aggregate stats for one segment, if any path recorded it.
    pub fn segment(&self, name: &str) -> Option<&SegmentStats> {
        self.segments.iter().find(|s| s.name == name)
    }

    /// Deterministic, integer-only JSON (the `fig_breakdown` golden
    /// format), indented `level` two-space stops for embedding.
    pub fn to_json_indented(&self, level: usize) -> String {
        let p = "  ".repeat(level);
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("{p}  \"paths\": {},\n", self.paths));
        out.push_str(&format!("{p}  \"total_ns\": {},\n", self.total_ns));
        out.push_str(&format!("{p}  \"segments\": {{"));
        for (i, s) in self.segments.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n{p}    \"{}\": {{ \"count\": {}, \"total_ns\": {}, \"p50_ns\": {}, \"p99_ns\": {} }}",
                s.name, s.count, s.total_ns, s.p50_ns, s.p99_ns
            ));
        }
        if !self.segments.is_empty() {
            out.push('\n');
            out.push_str(&p);
            out.push_str("  ");
        }
        out.push_str("},\n");
        out.push_str(&format!("{p}  \"slowest\": ["));
        for (i, (path, _)) in self.slowest.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n{p}    {{ \"trace\": {}, \"root\": \"{}\", \"start_ns\": {}, \"total_ns\": {}, \"segments\": {{",
                path.trace,
                path.root_class.name(),
                path.start.as_nanos(),
                path.total_ns
            ));
            let mut first = true;
            for (s, &v) in SEGMENTS.iter().zip(&path.segments) {
                if v == 0 {
                    continue;
                }
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str(&format!(" \"{s}\": {v}"));
            }
            out.push_str(" } }");
        }
        if !self.slowest.is_empty() {
            out.push('\n');
            out.push_str(&p);
            out.push_str("  ");
        }
        out.push_str("]\n");
        out.push_str(&p);
        out.push('}');
        out
    }

    /// Deterministic JSON, unindented.
    pub fn to_json(&self) -> String {
        self.to_json_indented(0)
    }

    /// Human-readable report: segment shares, then the slowest requests
    /// with their trees.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "critical path: {} traced requests totalling {}\n\n",
            self.paths,
            Nanos::from_nanos(self.total_ns)
        ));
        if self.segments.is_empty() {
            out.push_str("no traced requests recorded\n");
            return out;
        }
        out.push_str(&format!(
            "| {:<13} | {:>6} | {:>12} | {:>6} | {:>10} | {:>10} |\n",
            "segment", "count", "total", "share", "p50", "p99"
        ));
        out.push_str(&format!(
            "|{:-<15}|{:-<8}|{:-<14}|{:-<8}|{:-<12}|{:-<12}|\n",
            "", "", "", "", "", ""
        ));
        for s in &self.segments {
            let share = if self.total_ns > 0 {
                s.total_ns as f64 * 100.0 / self.total_ns as f64
            } else {
                0.0
            };
            out.push_str(&format!(
                "| {:<13} | {:>6} | {:>12} | {:>5.1}% | {:>10} | {:>10} |\n",
                s.name,
                s.count,
                format!("{}", Nanos::from_nanos(s.total_ns)),
                share,
                format!("{}", Nanos::from_nanos(s.p50_ns)),
                format!("{}", Nanos::from_nanos(s.p99_ns)),
            ));
        }
        if !self.slowest.is_empty() {
            out.push_str(&format!("\nslowest {} requests:\n", self.slowest.len()));
            for (i, (p, tree)) in self.slowest.iter().enumerate() {
                out.push_str(&format!(
                    "\n{:>3}. trace {} ({}) at t={}: {}\n",
                    i + 1,
                    p.trace,
                    p.root_class.name(),
                    p.start,
                    Nanos::from_nanos(p.total_ns)
                ));
                for line in tree.lines() {
                    out.push_str("     ");
                    out.push_str(line);
                    out.push('\n');
                }
            }
        }
        out
    }
}

impl TraceSink {
    /// Indexes the currently retained spans and links into a queryable
    /// forest.
    pub fn forest(&self) -> TraceForest {
        let (events, links) = self.snapshot();
        TraceForest::new(events, links)
    }

    /// Root spans still retained, oldest first.
    pub fn trace_roots(&self) -> Vec<SpanEvent> {
        self.forest().roots()
    }

    /// Reconstructs one trace's span tree, if its root is retained.
    pub fn tree(&self, trace: u64) -> Option<TraceNode> {
        self.forest().tree(trace)
    }

    /// Critical-path decomposition of every retained traced request.
    pub fn critical_summary(&self, top_n: usize) -> CriticalSummary {
        CriticalSummary::collect(&self.forest(), top_n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceCtx;

    fn ns(v: u64) -> Nanos {
        Nanos::from_nanos(v)
    }

    /// One synthetic traced commit: server_write [0,100] → group [10,80]
    /// → engine_put [20,70] → journal [30,60] → flush [40,55].
    fn commit_chain(sink: &TraceSink) -> TraceCtx {
        let root = sink.mint_root();
        sink.push_ctx(root);
        let group = sink.begin_span();
        let put = sink.begin_span();
        let jc = sink.begin_span();
        sink.emit(EventClass::SsdFlush, ns(40), ns(55), 0);
        let _ = (put, jc);
        sink.end_span(EventClass::JournalCommit, ns(30), ns(60), 4096);
        sink.end_span(EventClass::EnginePut, ns(20), ns(70), 512);
        sink.end_span(EventClass::GroupCommit, ns(10), ns(80), 512);
        assert_eq!(sink.pop_ctx(), Some(root));
        sink.emit_ctx(EventClass::ServerWrite, ns(0), ns(100), 64, root);
        let _ = group;
        root
    }

    #[test]
    fn tree_reconstructs_the_commit_chain() {
        let sink = TraceSink::new();
        let root = commit_chain(&sink);
        let tree = sink.tree(root.trace).expect("root retained");
        assert_eq!(tree.event.class, EventClass::ServerWrite);
        assert_eq!(tree.len(), 5);
        let mut classes = Vec::new();
        fn walk(n: &TraceNode, out: &mut Vec<EventClass>) {
            out.push(n.event.class);
            for c in &n.children {
                walk(c, out);
            }
        }
        walk(&tree, &mut classes);
        assert_eq!(
            classes,
            vec![
                EventClass::ServerWrite,
                EventClass::GroupCommit,
                EventClass::EnginePut,
                EventClass::JournalCommit,
                EventClass::SsdFlush,
            ]
        );
        let text = tree.render();
        assert!(text.contains("server_write"));
        assert!(text.contains("  group_commit"));
        assert!(text.contains("      journal_commit"));
    }

    #[test]
    fn critical_path_partitions_exactly() {
        let sink = TraceSink::new();
        let root = commit_chain(&sink);
        let tree = sink.tree(root.trace).unwrap();
        let p = CriticalPath::from_tree(&tree);
        assert_eq!(p.total_ns, 100);
        assert_eq!(p.segments.iter().sum::<u64>(), 100, "segments must partition the window");
        // server self-time: [0,10) + [80,100] = 30.
        assert_eq!(p.segment("admission"), 30);
        assert_eq!(p.segment("group_wait"), 20);
        assert_eq!(p.segment("wal_write"), 20);
        assert_eq!(p.segment("journal_wait"), 15);
        assert_eq!(p.segment("flush"), 15);
    }

    #[test]
    fn links_graft_the_group_into_follower_trees() {
        let sink = TraceSink::new();
        // Leader request owns the group span; a follower request links it.
        let leader = sink.mint_root();
        let follower = sink.mint_root();
        let group = sink.begin_span_with_parent(Some(leader));
        sink.link(follower, group);
        sink.end_span(EventClass::GroupCommit, ns(10), ns(50), 1024);
        sink.emit_ctx(EventClass::ServerWrite, ns(0), ns(60), 32, leader);
        sink.emit_ctx(EventClass::ServerWrite, ns(5), ns(58), 32, follower);
        let ftree = sink.tree(follower.trace).expect("follower tree");
        assert_eq!(ftree.len(), 2);
        assert!(ftree.children[0].grafted);
        assert_eq!(ftree.children[0].event.class, EventClass::GroupCommit);
        assert!(ftree.render().contains("(via link)"));
        // The leader still owns it directly.
        let ltree = sink.tree(leader.trace).expect("leader tree");
        assert!(!ltree.children[0].grafted);
        // Follower decomposition: 40ns group wait, 20ns self.
        let p = CriticalPath::from_tree(&ftree);
        assert_eq!(p.total_ns, 53);
        assert_eq!(p.segment("group_wait"), 40);
        assert_eq!(p.segment("admission"), 13);
    }

    #[test]
    fn ambient_emit_outside_any_scope_stays_untraced() {
        let sink = TraceSink::new();
        sink.emit(EventClass::SsdRead, ns(0), ns(5), 512);
        let (events, _) = sink.snapshot();
        assert_eq!(events[0].trace, 0);
        assert_eq!(events[0].span, 0);
        assert!(sink.trace_roots().is_empty());
    }

    #[test]
    fn repl_spans_extend_the_window_past_durable() {
        let sink = TraceSink::new();
        let root = sink.mint_root();
        let group = sink.child_ctx(root);
        sink.emit_ctx(EventClass::GroupCommit, ns(10), ns(40), 256, group);
        let ship = sink.child_ctx(group);
        sink.emit_ctx(EventClass::ReplShip, ns(40), ns(45), 256, ship);
        sink.emit_ctx(EventClass::ReplApply, ns(45), ns(70), 256, sink.child_ctx(ship));
        // The ack round-trip is the ship span's *sibling* (both under the
        // group), so ship/apply claim their own windows and ack keeps the
        // wire-wait remainder.
        sink.emit_ctx(EventClass::ReplAck, ns(40), ns(90), 256, sink.child_ctx(group));
        sink.emit_ctx(EventClass::ServerWrite, ns(0), ns(50), 16, root);
        let tree = sink.tree(root.trace).unwrap();
        let p = CriticalPath::from_tree(&tree);
        assert_eq!(p.total_ns, 90, "window runs to the ack, past durable");
        assert_eq!(p.segments.iter().sum::<u64>(), 90);
        assert_eq!(p.segment("ship"), 5);
        assert_eq!(p.segment("apply"), 25);
        assert_eq!(p.segment("ack"), 20);
        assert_eq!(p.segment("group_wait"), 30);
        assert_eq!(p.segment("admission"), 10);
    }

    #[test]
    fn critical_summary_aggregates_and_ranks() {
        let sink = TraceSink::new();
        let a = commit_chain(&sink);
        // A second, slower request.
        let b = sink.mint_root();
        sink.emit_ctx(EventClass::ServerWrite, ns(200), ns(500), 64, b);
        let s = sink.critical_summary(1);
        assert_eq!(s.paths, 2);
        assert_eq!(s.total_ns, 400);
        assert_eq!(s.slowest.len(), 1);
        assert_eq!(s.slowest[0].0.trace, b.trace);
        assert!(s.segment("admission").unwrap().count == 2);
        let json = s.to_json();
        assert!(json.contains("\"paths\": 2"));
        assert!(!json.contains('.'), "critical JSON must be integer-only:\n{json}");
        let text = s.render();
        assert!(text.contains("admission"));
        assert!(text.contains("slowest 1 requests"));
        let _ = a;
    }

    #[test]
    fn exemplar_trace_reaches_the_summary() {
        let sink = TraceSink::new();
        let root = sink.mint_root();
        sink.emit_ctx(EventClass::EnginePut, ns(0), ns(500), 64, root);
        sink.emit(EventClass::EnginePut, ns(0), ns(900), 64); // untraced, slower
        let s = sink.summary();
        let c = s.class(EventClass::EnginePut).unwrap();
        assert_eq!(c.exemplar_trace, root.trace, "exemplar ignores untraced spans");
    }

    #[test]
    fn link_capacity_is_bounded() {
        let sink = TraceSink::new();
        let a = sink.mint_root();
        let b = sink.mint_root();
        sink.link(TraceCtx::NONE, a);
        sink.link(a, TraceCtx::NONE);
        let (_, links) = sink.snapshot();
        assert!(links.is_empty(), "untraced endpoints record no link");
        sink.link(a, b);
        let (_, links) = sink.snapshot();
        assert_eq!(links.len(), 1);
    }
}
