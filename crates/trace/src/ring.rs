//! Fixed-capacity ring buffer of recent [`SpanEvent`]s.

use crate::event::SpanEvent;

/// Keeps the most recent `capacity` spans; older spans are overwritten
/// and counted in [`TraceRing::overwritten`].
#[derive(Debug, Clone)]
pub struct TraceRing {
    buf: Vec<SpanEvent>,
    capacity: usize,
    /// Index of the next write slot once the buffer is full.
    head: usize,
    /// Total spans ever pushed.
    pushed: u64,
}

impl TraceRing {
    /// Creates a ring that retains up to `capacity` spans (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        TraceRing { buf: Vec::with_capacity(capacity), capacity, head: 0, pushed: 0 }
    }

    /// Appends a span, evicting the oldest once full.
    pub fn push(&mut self, ev: SpanEvent) {
        if self.buf.len() < self.capacity {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.capacity;
        }
        self.pushed += 1;
    }

    /// Number of spans currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no spans are retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Maximum number of retained spans.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total spans ever pushed, including evicted ones.
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Spans evicted to make room for newer ones.
    pub fn overwritten(&self) -> u64 {
        self.pushed - self.buf.len() as u64
    }

    /// Retained spans, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &SpanEvent> {
        let (newer, older) = self.buf.split_at(self.head);
        older.iter().chain(newer.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventClass;
    use nob_sim::Nanos;

    fn ev(seq: u64) -> SpanEvent {
        SpanEvent {
            seq,
            class: EventClass::SsdWrite,
            start: Nanos::from_nanos(seq * 10),
            end: Nanos::from_nanos(seq * 10 + 5),
            bytes: 0,
            trace: 0,
            span: 0,
            parent: 0,
        }
    }

    #[test]
    fn fills_in_order_below_capacity() {
        let mut r = TraceRing::new(4);
        for s in 0..3 {
            r.push(ev(s));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.overwritten(), 0);
        let seqs: Vec<u64> = r.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
    }

    #[test]
    fn wraparound_keeps_newest_in_order() {
        let mut r = TraceRing::new(4);
        for s in 0..10 {
            r.push(ev(s));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.pushed(), 10);
        assert_eq!(r.overwritten(), 6);
        let seqs: Vec<u64> = r.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
    }

    #[test]
    fn wraparound_exactly_at_capacity_boundary() {
        let mut r = TraceRing::new(3);
        for s in 0..3 {
            r.push(ev(s));
        }
        assert_eq!(r.overwritten(), 0);
        r.push(ev(3));
        let seqs: Vec<u64> = r.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![1, 2, 3]);
        assert_eq!(r.overwritten(), 1);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut r = TraceRing::new(0);
        r.push(ev(0));
        r.push(ev(1));
        assert_eq!(r.len(), 1);
        assert_eq!(r.iter().next().unwrap().seq, 1);
    }
}
