//! HDR-style log-bucketed latency histograms.
//!
//! Values up to 31 ns are recorded exactly; beyond that each power of two
//! is split into 32 linear sub-buckets, bounding the relative recording
//! error at ~3.1% while covering the whole `u64` range in 1920 buckets.

/// Linear sub-buckets per octave, as a power of two.
const SUB_BITS: u32 = 5;
/// Linear sub-buckets per octave.
const SUB: u64 = 1 << SUB_BITS;
/// Total bucket count: the linear block plus 59 octaves × 32 sub-buckets.
const N_BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUB as usize;

/// A fixed-footprint latency histogram over `u64` nanoseconds.
///
/// # Examples
///
/// ```
/// use nob_trace::Histogram;
///
/// let mut h = Histogram::new();
/// for v in 1..=100u64 {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 100);
/// assert_eq!(h.value_at_quantile(0.5), 50);
/// assert_eq!(h.max(), 100);
/// ```
#[derive(Clone)]
pub struct Histogram {
    counts: Box<[u64; N_BUCKETS]>,
    count: u64,
    total: u128,
    min: u64,
    max: u64,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("min", &self.min)
            .field("max", &self.max)
            .finish()
    }
}

/// Bucket index for a value.
fn index_for(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let block = (msb - SUB_BITS + 1) as u64;
    (block * SUB + ((v >> (msb - SUB_BITS)) - SUB)) as usize
}

/// Largest value a bucket holds (its inclusive upper bound).
fn upper_for(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < SUB {
        return idx;
    }
    let block = idx / SUB;
    let offset = idx % SUB;
    ((SUB + offset + 1) << (block - 1)).wrapping_sub(1)
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: vec![0u64; N_BUCKETS].into_boxed_slice().try_into().expect("length matches"),
            count: 0,
            total: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one value.
    pub fn record(&mut self, v: u64) {
        self.counts[index_for(v)] += 1;
        self.count += 1;
        self.total += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Exact smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total as f64 / self.count as f64
        }
    }

    /// Sum of recorded values, saturating at `u64::MAX`.
    pub fn total(&self) -> u64 {
        self.total.min(u64::MAX as u128) as u64
    }

    /// The smallest recorded value `v` such that at least `q` of all
    /// recordings are ≤ `v`, reported as its bucket's upper bound (never
    /// above [`Histogram::max`]). Returns 0 when empty.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return upper_for(idx).min(self.max);
            }
        }
        self.max
    }

    /// The (p50, p95, p99, p999) quantiles.
    pub fn percentiles(&self) -> (u64, u64, u64, u64) {
        (
            self.value_at_quantile(0.50),
            self.value_at_quantile(0.95),
            self.value_at_quantile(0.99),
            self.value_at_quantile(0.999),
        )
    }

    /// Adds every recording of `other` into `self`.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += *b;
        }
        self.count += other.count;
        self.total += other.total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_exact() {
        let mut h = Histogram::new();
        h.record(0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.value_at_quantile(0.5), 0);
        assert_eq!(h.value_at_quantile(1.0), 0);
    }

    #[test]
    fn linear_range_is_exact() {
        // Every value below 32 lives in its own bucket.
        for v in 0..SUB {
            assert_eq!(index_for(v), v as usize);
            assert_eq!(upper_for(v as usize), v);
        }
        // …and so does every value below 64 (shift = 0 in octave 1).
        for v in SUB..64 {
            assert_eq!(upper_for(index_for(v)), v);
        }
    }

    #[test]
    fn exact_powers_of_two_land_on_bucket_lower_bounds() {
        for k in 0..64u32 {
            let v = 1u64 << k;
            let idx = index_for(v);
            let upper = upper_for(idx);
            // The bucket's range contains v with ≤ 1/32 relative error.
            assert!(upper >= v, "2^{k}: upper {upper} < {v}");
            assert!(upper - v <= v >> SUB_BITS, "2^{k}: error too large ({upper} vs {v})");
            // The previous bucket ends strictly below v.
            assert!(idx == 0 || upper_for(idx - 1) < v, "2^{k} not a lower bound");
        }
    }

    #[test]
    fn bucket_boundaries_are_monotone_and_contiguous() {
        for idx in 1..N_BUCKETS {
            assert!(upper_for(idx) > upper_for(idx - 1), "bucket {idx} not monotone");
        }
        // Every bucket's range starts right after its predecessor ends.
        for idx in 1..N_BUCKETS {
            let lo = upper_for(idx - 1) + 1;
            assert_eq!(index_for(lo), idx, "gap below bucket {idx}");
        }
    }

    #[test]
    fn u64_max_is_representable() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        assert_eq!(index_for(u64::MAX), N_BUCKETS - 1);
        assert_eq!(h.max(), u64::MAX);
        // The reported quantile is clamped to the exact max.
        assert_eq!(h.value_at_quantile(0.999), u64::MAX);
    }

    #[test]
    fn quantiles_over_uniform_values() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let (p50, p95, p99, p999) = h.percentiles();
        // ≤ 1/32 relative recording error.
        for (q, v) in [(p50, 500u64), (p95, 950), (p99, 990), (p999, 999)] {
            assert!(q >= v && q <= v + v / 32 + 1, "quantile {q} for true {v}");
        }
        assert_eq!(h.value_at_quantile(1.0), 1000);
        assert_eq!(h.value_at_quantile(0.0), 1);
    }

    #[test]
    fn quantile_never_exceeds_max() {
        let mut h = Histogram::new();
        h.record(1_000_003);
        assert_eq!(h.value_at_quantile(0.5), 1_000_003);
        assert_eq!(h.value_at_quantile(0.999), 1_000_003);
    }

    #[test]
    fn merge_combines_counts_and_extrema() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        b.record(1_000_000);
        b.record(2);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), 2);
        assert_eq!(a.max(), 1_000_000);
        let empty = Histogram::new();
        a.merge(&empty);
        assert_eq!(a.count(), 3);
    }

    #[test]
    fn mean_and_total() {
        let mut h = Histogram::new();
        h.record(10);
        h.record(20);
        assert!((h.mean() - 15.0).abs() < 1e-9);
        assert_eq!(h.total(), 30);
        assert_eq!(Histogram::new().mean(), 0.0);
    }
}
