//! # nob-trace — cross-layer event tracing for the NobLSM simulation
//!
//! NobLSM's argument is temporal: fsync-driven journal commits serialize
//! the device and stall the engine's write path. End-of-run counters
//! (`DbStats`, `FsStats`, `SsdStats`) cannot show *where* a stall
//! happened or what it waited on. This crate is the missing substrate:
//!
//! * [`EventClass`] — a typed taxonomy of spans across all three layers
//!   (SSD commands, Ext4 journal commits / checkpoints / writeback,
//!   engine puts / gets / compactions / stalls, injected faults);
//! * [`Histogram`] — HDR-style log-bucketed latency histograms
//!   (p50/p95/p99/p999/max, ≤ 3.1% bucketing error over the full `u64`
//!   nanosecond range) kept per event class;
//! * [`TraceRing`] — a bounded ring of recent spans for JSON and
//!   Chrome-trace (`chrome://tracing`) export;
//! * [`TraceSink`] — the cloneable handle the SSD, Ext4 and engine
//!   layers emit into; layers hold `Option<TraceSink>` so the disabled
//!   path is one branch and allocation-free;
//! * [`TraceSummary`] — a deterministic, integer-nanosecond snapshot
//!   embedded in bench JSON output and diffed byte-for-byte by the CI
//!   bench-regression gate;
//! * [`TraceCtx`] — causal identity (`trace / span / parent`) minted per
//!   request and threaded through every layer, so the ring reconstructs
//!   full span trees ([`TraceNode`]);
//! * [`CriticalPath`] / [`CriticalSummary`] — per-request critical-path
//!   decomposition: each traced commit's send→durable(→replicated)
//!   window partitioned into named segments (admission, group wait, WAL
//!   write, journal wait, FLUSH, ship, apply, ack) that sum exactly.
//!
//! Everything is priced in virtual time ([`nob_sim::Nanos`]); fixed-seed
//! runs therefore produce bit-identical summaries, which is what makes
//! golden-file tests and exact CI baselines possible.

pub mod critical;
pub mod event;
pub mod hist;
pub mod ring;
pub mod sink;
pub mod summary;

pub use critical::{
    CriticalPath, CriticalSummary, SegmentStats, TraceForest, TraceNode, N_SEGMENTS, SEGMENTS,
};
pub use event::{EventClass, SpanEvent, StallKind, StallRecord, TraceCtx, N_CLASSES};
pub use hist::Histogram;
pub use ring::TraceRing;
pub use sink::{SpanLink, TraceSink};
pub use summary::{ClassStats, TraceSummary};
