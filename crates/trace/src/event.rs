//! The trace event taxonomy: one typed class per span the stack emits.

use nob_sim::Nanos;

/// Every span class the three layers emit. The numeric discriminant
/// indexes the per-class histogram array, so the order is part of the
/// crate's stable output format (JSON summaries list classes in this
/// order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum EventClass {
    /// Foreground SSD read command, issue → completion.
    SsdRead = 0,
    /// Foreground SSD write command, issue → completion.
    SsdWrite = 1,
    /// Foreground SSD FLUSH, issue → completion (the barrier the paper
    /// blames for sync stalls).
    SsdFlush = 2,
    /// Background (write-back class) SSD write, issue → completion.
    SsdBgWrite = 3,
    /// Background SSD FLUSH (asynchronous commit records).
    SsdBgFlush = 4,
    /// One data write-back command of an inode (Ext4 `data=ordered`
    /// phase 1, or the kernel flusher streaming dirty pages out).
    Writeback = 5,
    /// A synchronous (fsync-driven) JBD2 journal commit, start → FLUSH
    /// acknowledged.
    JournalCommit = 6,
    /// An asynchronous (timer / dirty-threshold) JBD2 commit — the
    /// checkpoint-style commits NobLSM piggybacks on.
    Checkpoint = 7,
    /// An Ext4 fast-commit of a single inode.
    FastCommit = 8,
    /// Engine write (put/delete/batch), caller issue → WAL + memtable
    /// done. Includes writer-mutex wait and any write stall.
    EnginePut = 9,
    /// Engine point read, caller issue → value resolved.
    EngineGet = 10,
    /// Minor compaction (memtable flush to L0), schedule → table synced.
    MinorCompaction = 11,
    /// Major compaction, schedule → outputs written.
    MajorCompaction = 12,
    /// Foreground write stall (memtable wait, L0 slowdown/stop).
    WriteStall = 13,
    /// A write the fault injector tore (span of the torn command).
    FaultTornWrite = 14,
    /// A write the fault injector corrupted.
    FaultCorruptWrite = 15,
    /// A FLUSH the fault injector acknowledged without draining.
    FaultDroppedFlush = 16,
    /// One coalesced group commit on a store shard: leader drain start →
    /// merged batch durable. `bytes` is the merged payload; the span
    /// covers every follower the leader carried.
    GroupCommit = 17,
    /// One served read-class request (GET/MGET), server receipt → reply
    /// encoded. `bytes` is the reply payload.
    ServerRead = 18,
    /// One served write-class request (SET/DEL/BATCH), server receipt →
    /// group-commit outcome resolved. `bytes` is the request payload.
    ServerWrite = 19,
    /// One served control request (PING/INFO), receipt → reply encoded.
    ServerControl = 20,
    /// One committed group shipped by a replication leader: commit
    /// instant → record handed to the subscriber's outbox. `bytes` is the
    /// shipped payload.
    ReplShip = 21,
    /// One shipped record applied by a follower: receipt → entries in the
    /// follower's engine. `bytes` is the applied payload.
    ReplApply = 22,
    /// One acknowledgement round-trip observed by the leader: the span of
    /// the acked record from its commit to the ack's arrival — the
    /// per-record replication lag. `bytes` is the acked payload.
    ReplAck = 23,
    /// One served SCAN page (SCAN / cursor resume), server receipt →
    /// page encoded. `bytes` is the reply payload.
    ServerScan = 24,
    /// Input-read stage of one staged major-compaction granule.
    CompactRead = 25,
    /// Merge-CPU stage of one staged major-compaction granule.
    CompactMerge = 26,
    /// Output-write stage of one staged major-compaction granule.
    /// `bytes` is the granule's output size.
    CompactWrite = 27,
}

/// Number of event classes (length of [`EventClass::ALL`]).
pub const N_CLASSES: usize = 28;

impl EventClass {
    /// Every class, in discriminant order.
    pub const ALL: [EventClass; N_CLASSES] = [
        EventClass::SsdRead,
        EventClass::SsdWrite,
        EventClass::SsdFlush,
        EventClass::SsdBgWrite,
        EventClass::SsdBgFlush,
        EventClass::Writeback,
        EventClass::JournalCommit,
        EventClass::Checkpoint,
        EventClass::FastCommit,
        EventClass::EnginePut,
        EventClass::EngineGet,
        EventClass::MinorCompaction,
        EventClass::MajorCompaction,
        EventClass::WriteStall,
        EventClass::FaultTornWrite,
        EventClass::FaultCorruptWrite,
        EventClass::FaultDroppedFlush,
        EventClass::GroupCommit,
        EventClass::ServerRead,
        EventClass::ServerWrite,
        EventClass::ServerControl,
        EventClass::ReplShip,
        EventClass::ReplApply,
        EventClass::ReplAck,
        EventClass::ServerScan,
        EventClass::CompactRead,
        EventClass::CompactMerge,
        EventClass::CompactWrite,
    ];

    /// Stable snake_case name, used in JSON output.
    pub fn name(self) -> &'static str {
        match self {
            EventClass::SsdRead => "ssd_read",
            EventClass::SsdWrite => "ssd_write",
            EventClass::SsdFlush => "ssd_flush",
            EventClass::SsdBgWrite => "ssd_bg_write",
            EventClass::SsdBgFlush => "ssd_bg_flush",
            EventClass::Writeback => "writeback",
            EventClass::JournalCommit => "journal_commit",
            EventClass::Checkpoint => "checkpoint",
            EventClass::FastCommit => "fast_commit",
            EventClass::EnginePut => "engine_put",
            EventClass::EngineGet => "engine_get",
            EventClass::MinorCompaction => "minor_compaction",
            EventClass::MajorCompaction => "major_compaction",
            EventClass::WriteStall => "write_stall",
            EventClass::FaultTornWrite => "fault_torn_write",
            EventClass::FaultCorruptWrite => "fault_corrupt_write",
            EventClass::FaultDroppedFlush => "fault_dropped_flush",
            EventClass::GroupCommit => "group_commit",
            EventClass::ServerRead => "server_read",
            EventClass::ServerWrite => "server_write",
            EventClass::ServerControl => "server_control",
            EventClass::ReplShip => "repl_ship",
            EventClass::ReplApply => "repl_apply",
            EventClass::ReplAck => "repl_ack",
            EventClass::ServerScan => "server_scan",
            EventClass::CompactRead => "compact_read",
            EventClass::CompactMerge => "compact_merge",
            EventClass::CompactWrite => "compact_write",
        }
    }

    /// Which layer of the stack emits this class (the Chrome-trace
    /// "thread" the span renders on).
    pub fn layer(self) -> &'static str {
        match self {
            EventClass::SsdRead
            | EventClass::SsdWrite
            | EventClass::SsdFlush
            | EventClass::SsdBgWrite
            | EventClass::SsdBgFlush
            | EventClass::FaultTornWrite
            | EventClass::FaultCorruptWrite
            | EventClass::FaultDroppedFlush => "ssd",
            EventClass::Writeback
            | EventClass::JournalCommit
            | EventClass::Checkpoint
            | EventClass::FastCommit => "ext4",
            EventClass::EnginePut
            | EventClass::EngineGet
            | EventClass::MinorCompaction
            | EventClass::MajorCompaction
            | EventClass::WriteStall
            | EventClass::GroupCommit
            | EventClass::CompactRead
            | EventClass::CompactMerge
            | EventClass::CompactWrite => "engine",
            EventClass::ServerRead
            | EventClass::ServerWrite
            | EventClass::ServerControl
            | EventClass::ServerScan => "server",
            EventClass::ReplShip | EventClass::ReplApply | EventClass::ReplAck => "repl",
        }
    }

    /// Chrome-trace tid for the class's layer (4 = repl, 3 = server,
    /// 0 = engine, 1 = ext4, 2 = ssd), so the layers stack naturally in
    /// `chrome://tracing`.
    pub fn tid(self) -> u32 {
        match self.layer() {
            "engine" => 0,
            "ext4" => 1,
            "server" => 3,
            "repl" => 4,
            _ => 2,
        }
    }
}

/// Causal identity of a span: the request tree it belongs to, its own
/// span id, and its parent span. Ids are allocated per sink, starting at
/// 1; 0 everywhere means "untraced" and is what spans emitted outside any
/// request scope carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCtx {
    /// Trace id: the root span's id, shared by every span in the tree
    /// (0 = untraced).
    pub trace: u64,
    /// This span's id (unique per sink).
    pub span: u64,
    /// Parent span id (0 = this span is the tree root).
    pub parent: u64,
}

impl TraceCtx {
    /// The untraced context (all zeros).
    pub const NONE: TraceCtx = TraceCtx { trace: 0, span: 0, parent: 0 };

    /// Whether this is the untraced context.
    pub fn is_none(&self) -> bool {
        self.span == 0
    }

    /// Whether this context is the root of its trace.
    pub fn is_root(&self) -> bool {
        self.span != 0 && self.parent == 0
    }
}

/// One recorded span: a class plus its `[start, end]` window and an
/// optional byte payload (0 where meaningless).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Monotone per-sink sequence number (emission order).
    pub seq: u64,
    /// The span's class.
    pub class: EventClass,
    /// Issue instant.
    pub start: Nanos,
    /// Completion instant.
    pub end: Nanos,
    /// Bytes moved, where the class has a payload.
    pub bytes: u64,
    /// Trace id this span belongs to (0 = untraced).
    pub trace: u64,
    /// This span's id (0 = untraced).
    pub span: u64,
    /// Parent span id (0 = root or untraced).
    pub parent: u64,
}

impl SpanEvent {
    /// The span's latency (`end - start`, saturating).
    pub fn duration(&self) -> Nanos {
        self.end - self.start
    }

    /// The span's causal identity.
    pub fn ctx(&self) -> TraceCtx {
        TraceCtx { trace: self.trace, span: self.span, parent: self.parent }
    }

    /// Whether the span is the root of a trace.
    pub fn is_root(&self) -> bool {
        self.span != 0 && self.parent == 0
    }
}

/// What the foreground was stalled on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallKind {
    /// Memtable full, predecessor still flushing.
    Memtable,
    /// `L0` at the stop trigger.
    L0Stop,
    /// LevelDB's 1 ms slowdown delay at the `L0` slowdown trigger.
    Slowdown,
}

impl StallKind {
    /// Stable snake_case name, used in JSON output.
    pub fn name(self) -> &'static str {
        match self {
            StallKind::Memtable => "memtable",
            StallKind::L0Stop => "l0_stop",
            StallKind::Slowdown => "slowdown",
        }
    }
}

/// One foreground stall with its causal chain: the journal commit and
/// device FLUSH most recently observed when the stall ended — the I/O the
/// stalled writer was transitively waiting on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallRecord {
    /// What the foreground was stalled on.
    pub kind: StallKind,
    /// Stall begin.
    pub start: Nanos,
    /// Stall end (foreground resumed).
    pub end: Nanos,
    /// The journal commit / checkpoint / fast-commit span last emitted
    /// before the stall resolved, if any.
    pub cause_commit: Option<SpanEvent>,
    /// The device FLUSH span last emitted before the stall resolved.
    pub cause_flush: Option<SpanEvent>,
}

impl StallRecord {
    /// The stall's duration.
    pub fn duration(&self) -> Nanos {
        self.end - self.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discriminants_index_all() {
        for (i, c) in EventClass::ALL.iter().enumerate() {
            assert_eq!(*c as usize, i, "{}", c.name());
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = EventClass::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), N_CLASSES);
    }

    #[test]
    fn layers_cover_the_stack() {
        assert_eq!(EventClass::SsdFlush.layer(), "ssd");
        assert_eq!(EventClass::JournalCommit.layer(), "ext4");
        assert_eq!(EventClass::EnginePut.layer(), "engine");
        assert_eq!(EventClass::EnginePut.tid(), 0);
        assert_eq!(EventClass::SsdFlush.tid(), 2);
        assert_eq!(EventClass::ServerWrite.layer(), "server");
        assert_eq!(EventClass::ServerRead.tid(), 3);
        assert_eq!(EventClass::ServerScan.layer(), "server");
        assert_eq!(EventClass::ServerScan.tid(), 3);
        assert_eq!(EventClass::ReplShip.layer(), "repl");
        assert_eq!(EventClass::ReplAck.tid(), 4);
        assert_eq!(EventClass::CompactRead.layer(), "engine");
        assert_eq!(EventClass::CompactWrite.tid(), 0);
    }

    #[test]
    fn span_duration_saturates() {
        let e = SpanEvent {
            seq: 0,
            class: EventClass::SsdRead,
            start: Nanos::from_micros(5),
            end: Nanos::from_micros(2),
            bytes: 0,
            trace: 0,
            span: 0,
            parent: 0,
        };
        assert_eq!(e.duration(), Nanos::ZERO);
    }

    #[test]
    fn ctx_roundtrips_and_classifies() {
        assert!(TraceCtx::NONE.is_none());
        assert!(!TraceCtx::NONE.is_root());
        let root = TraceCtx { trace: 7, span: 7, parent: 0 };
        assert!(root.is_root());
        assert!(!root.is_none());
        let child = TraceCtx { trace: 7, span: 9, parent: 7 };
        assert!(!child.is_root());
        let e = SpanEvent {
            seq: 0,
            class: EventClass::EnginePut,
            start: Nanos::ZERO,
            end: Nanos::from_nanos(1),
            bytes: 0,
            trace: 7,
            span: 9,
            parent: 7,
        };
        assert_eq!(e.ctx(), child);
        assert!(!e.is_root());
    }
}
