//! The shared trace sink: a cheaply cloneable handle every layer emits
//! spans into.

use std::sync::{Arc, Mutex, MutexGuard};

use crate::event::{EventClass, SpanEvent, StallKind, StallRecord, TraceCtx, N_CLASSES};
use crate::hist::Histogram;
use crate::ring::TraceRing;
use crate::summary::{ClassStats, TraceSummary};
use nob_sim::Nanos;

/// Default ring capacity (spans retained for export).
const DEFAULT_RING: usize = 4096;

/// Stalls kept before pruning to the longest.
const STALL_KEEP: usize = 64;

/// Cross-trace links kept before counting further ones as dropped.
const LINK_KEEP: usize = 8192;

/// One cross-trace graft: the span `from` (in one request's tree) also
/// waited on the subtree rooted at `to` (in another request's tree) —
/// how a group-commit leader span fans in many follower requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanLink {
    /// Span that waited (e.g. a follower request's root).
    pub from: u64,
    /// Span it waited on (e.g. the leader's group-commit span).
    pub to: u64,
}

struct TraceState {
    seq: u64,
    hists: [Histogram; N_CLASSES],
    bytes: [u64; N_CLASSES],
    ring: TraceRing,
    stalls: Vec<StallRecord>,
    stall_count: u64,
    stall_total_ns: u64,
    last_commit: Option<SpanEvent>,
    last_flush: Option<SpanEvent>,
    /// Next causal span id (0 is reserved for "untraced").
    next_span: u64,
    /// Ambient causal-context stack: `emit` parents new spans under the
    /// top entry, which is how the synchronous commit chain (server →
    /// store → engine → ext4 → ssd) nests without threading a context
    /// through every call.
    stack: Vec<TraceCtx>,
    /// Cross-trace grafts (group-commit fan-in), bounded by `LINK_KEEP`.
    links: Vec<SpanLink>,
    links_dropped: u64,
    /// Per-class exemplar: `(duration_ns, trace_id)` of the slowest
    /// *traced* span, linking a histogram tail to a concrete tree.
    exemplar: [(u64, u64); N_CLASSES],
}

impl TraceState {
    fn new(ring_capacity: usize) -> Self {
        TraceState {
            seq: 0,
            hists: std::array::from_fn(|_| Histogram::new()),
            bytes: [0; N_CLASSES],
            ring: TraceRing::new(ring_capacity),
            stalls: Vec::new(),
            stall_count: 0,
            stall_total_ns: 0,
            last_commit: None,
            last_flush: None,
            next_span: 1,
            stack: Vec::new(),
            links: Vec::new(),
            links_dropped: 0,
            exemplar: [(0, 0); N_CLASSES],
        }
    }

    fn alloc_span(&mut self) -> u64 {
        let id = self.next_span;
        self.next_span += 1;
        id
    }

    /// A fresh context: child of `parent` when given, root otherwise.
    fn mint(&mut self, parent: Option<TraceCtx>) -> TraceCtx {
        let span = self.alloc_span();
        match parent {
            Some(p) if !p.is_none() => TraceCtx { trace: p.trace, span, parent: p.span },
            _ => TraceCtx { trace: span, span, parent: 0 },
        }
    }

    /// The context a plain `emit` carries: a fresh child of the stack
    /// top, or untraced when no request scope is active.
    fn ambient(&mut self) -> TraceCtx {
        match self.stack.last().copied() {
            Some(top) => self.mint(Some(top)),
            None => TraceCtx::NONE,
        }
    }

    fn record(
        &mut self,
        class: EventClass,
        start: Nanos,
        end: Nanos,
        bytes: u64,
        ctx: TraceCtx,
    ) -> SpanEvent {
        let ev = SpanEvent {
            seq: self.seq,
            class,
            start,
            end,
            bytes,
            trace: ctx.trace,
            span: ctx.span,
            parent: ctx.parent,
        };
        self.seq += 1;
        let idx = class as usize;
        self.hists[idx].record(ev.duration().as_nanos());
        self.bytes[idx] += bytes;
        if ctx.trace != 0 && ev.duration().as_nanos() > self.exemplar[idx].0 {
            self.exemplar[idx] = (ev.duration().as_nanos(), ctx.trace);
        }
        self.ring.push(ev);
        match class {
            EventClass::JournalCommit | EventClass::Checkpoint | EventClass::FastCommit => {
                self.last_commit = Some(ev);
            }
            EventClass::SsdFlush | EventClass::SsdBgFlush => self.last_flush = Some(ev),
            _ => {}
        }
        ev
    }
}

/// A handle onto shared trace state. Clone it freely: the SSD, Ext4 and
/// engine layers each hold a clone of the same sink, so summaries and
/// exports see the whole stack. All methods take `&self`; the state sits
/// behind a mutex.
///
/// The instrumented layers store an `Option<TraceSink>` — with `None`
/// the emit path is a single branch and allocates nothing.
#[derive(Clone)]
pub struct TraceSink {
    inner: Arc<Mutex<TraceState>>,
}

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("TraceSink")
    }
}

impl Default for TraceSink {
    fn default() -> Self {
        TraceSink::new()
    }
}

impl TraceSink {
    /// A sink retaining the default number of spans.
    pub fn new() -> Self {
        TraceSink::with_ring_capacity(DEFAULT_RING)
    }

    /// A sink whose ring retains up to `capacity` spans.
    pub fn with_ring_capacity(capacity: usize) -> Self {
        TraceSink { inner: Arc::new(Mutex::new(TraceState::new(capacity))) }
    }

    fn lock(&self) -> MutexGuard<'_, TraceState> {
        // A panic while holding the lock poisons it; the data (plain
        // counters) is still fine to read.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Records one completed span. The span is parented under the
    /// ambient context (the top of the stack pushed by
    /// [`TraceSink::begin_span`] / [`TraceSink::push_ctx`]); with no
    /// active scope it is untraced (all-zero causal ids), exactly as
    /// before causal tracing existed.
    pub fn emit(&self, class: EventClass, start: Nanos, end: Nanos, bytes: u64) {
        let mut st = self.lock();
        let ctx = st.ambient();
        st.record(class, start, end, bytes, ctx);
    }

    /// Records one completed span under an explicitly minted context
    /// (from [`TraceSink::mint_root`], [`TraceSink::child_ctx`] or a
    /// popped scope) instead of the ambient stack.
    pub fn emit_ctx(&self, class: EventClass, start: Nanos, end: Nanos, bytes: u64, ctx: TraceCtx) {
        self.lock().record(class, start, end, bytes, ctx);
    }

    /// Mints a fresh root context (a new trace), without pushing it.
    /// Callers thread it through asynchronous hand-offs (reply queues,
    /// group-commit tickets) and later emit with
    /// [`TraceSink::emit_ctx`] / parent children under it.
    pub fn mint_root(&self) -> TraceCtx {
        self.lock().mint(None)
    }

    /// Mints a fresh child of `parent` (a fresh root if `parent` is
    /// [`TraceCtx::NONE`]), without pushing it.
    pub fn child_ctx(&self, parent: TraceCtx) -> TraceCtx {
        let mut st = self.lock();
        if parent.is_none() {
            st.mint(None)
        } else {
            st.mint(Some(parent))
        }
    }

    /// Pushes an existing context onto the ambient stack; spans emitted
    /// until the matching [`TraceSink::pop_ctx`] become its children.
    pub fn push_ctx(&self, ctx: TraceCtx) {
        self.lock().stack.push(ctx);
    }

    /// Pops the ambient stack (the context is returned so the caller can
    /// emit its span via [`TraceSink::emit_ctx`], or drop it to cancel).
    pub fn pop_ctx(&self) -> Option<TraceCtx> {
        self.lock().stack.pop()
    }

    /// Opens a span scope: mints a child of the current ambient context
    /// (or a fresh root when none is active) and pushes it. Close with
    /// [`TraceSink::end_span`] (emits) or [`TraceSink::pop_ctx`]
    /// (cancels, e.g. on an error path).
    pub fn begin_span(&self) -> TraceCtx {
        let mut st = self.lock();
        let top = st.stack.last().copied();
        let ctx = st.mint(top);
        st.stack.push(ctx);
        ctx
    }

    /// Opens a span scope under an explicit parent — for code that picks
    /// work off a queue where the ambient stack no longer holds the
    /// originating request (e.g. a group-commit leader). `None` or
    /// [`TraceCtx::NONE`] starts a fresh root.
    pub fn begin_span_with_parent(&self, parent: Option<TraceCtx>) -> TraceCtx {
        let mut st = self.lock();
        let ctx = st.mint(parent.filter(|p| !p.is_none()));
        st.stack.push(ctx);
        ctx
    }

    /// Closes the innermost span scope and records its span with the
    /// scope's pre-minted causal identity (children emitted inside the
    /// scope already point at it). Falls back to a plain ambient emit if
    /// no scope is active (a push/pop mismatch, not worth panicking for).
    pub fn end_span(&self, class: EventClass, start: Nanos, end: Nanos, bytes: u64) {
        let mut st = self.lock();
        let ctx = st.stack.pop().unwrap_or(TraceCtx::NONE);
        st.record(class, start, end, bytes, ctx);
    }

    /// Records that span `from` (one request's tree) also waited on the
    /// subtree rooted at span `to` (another request's tree): the
    /// group-commit fan-in. Tree reconstruction grafts `to`'s subtree
    /// under `from`. Links are bounded; excess links are counted dropped.
    pub fn link(&self, from: TraceCtx, to: TraceCtx) {
        if from.is_none() || to.is_none() {
            return;
        }
        let mut st = self.lock();
        if st.links.len() >= LINK_KEEP {
            st.links_dropped += 1;
            return;
        }
        st.links.push(SpanLink { from: from.span, to: to.span });
    }

    /// Records a foreground write stall, capturing its causal chain: the
    /// last commit-family span and last device FLUSH observed before the
    /// stall resolved. Returns the stall span's context so callers can
    /// attach children (e.g. the compaction stages that ran during the
    /// stall) via [`TraceSink::child_ctx`] / [`TraceSink::emit_ctx`];
    /// it is [`TraceCtx::NONE`] outside any request scope.
    pub fn emit_stall(&self, kind: StallKind, start: Nanos, end: Nanos) -> TraceCtx {
        let mut st = self.lock();
        let ctx = st.ambient();
        st.record(EventClass::WriteStall, start, end, 0, ctx);
        let rec = StallRecord {
            kind,
            start,
            end,
            cause_commit: st.last_commit,
            cause_flush: st.last_flush,
        };
        st.stall_count += 1;
        st.stall_total_ns = st.stall_total_ns.saturating_add(rec.duration().as_nanos());
        st.stalls.push(rec);
        if st.stalls.len() > STALL_KEEP {
            // Prune to the longest half, preserving discovery order for
            // equal durations so summaries stay deterministic.
            let mut keep: Vec<StallRecord> = std::mem::take(&mut st.stalls);
            keep.sort_by(|a, b| {
                b.duration().as_nanos().cmp(&a.duration().as_nanos()).then(a.start.cmp(&b.start))
            });
            keep.truncate(STALL_KEEP / 2);
            st.stalls = keep;
        }
        ctx
    }

    /// Total spans emitted so far.
    pub fn events(&self) -> u64 {
        self.lock().ring.pushed()
    }

    /// Spans evicted from the ring so far (histograms still count them,
    /// but span trees and exports lose them) — cheap enough for stats
    /// lines polled per request.
    pub fn dropped(&self) -> u64 {
        self.lock().ring.overwritten()
    }

    /// A snapshot of one class's histogram (for external merging, e.g.
    /// chaos campaigns grouping clean vs faulted runs).
    pub fn histogram(&self, class: EventClass) -> Histogram {
        self.lock().hists[class as usize].clone()
    }

    /// Drops all recorded state, keeping the ring capacity.
    pub fn reset(&self) {
        let mut st = self.lock();
        *st = TraceState::new(st.ring.capacity());
    }

    /// Summarises everything recorded so far.
    pub fn summary(&self) -> TraceSummary {
        let st = self.lock();
        let mut classes = Vec::new();
        for class in EventClass::ALL {
            let h = &st.hists[class as usize];
            if h.is_empty() {
                continue;
            }
            let (p50, p95, p99, p999) = h.percentiles();
            classes.push(ClassStats {
                class,
                count: h.count(),
                bytes: st.bytes[class as usize],
                total_ns: h.total(),
                min_ns: h.min(),
                max_ns: h.max(),
                p50_ns: p50,
                p95_ns: p95,
                p99_ns: p99,
                p999_ns: p999,
                exemplar_trace: st.exemplar[class as usize].1,
            });
        }
        let mut top = st.stalls.clone();
        top.sort_by(|a, b| {
            b.duration().as_nanos().cmp(&a.duration().as_nanos()).then(a.start.cmp(&b.start))
        });
        top.truncate(TraceSummary::TOP_STALLS);
        TraceSummary {
            events: st.ring.pushed(),
            dropped: st.ring.overwritten(),
            classes,
            stall_count: st.stall_count,
            stall_total_ns: st.stall_total_ns,
            top_stalls: top,
        }
    }

    /// A snapshot of the retained spans (oldest first) plus the recorded
    /// cross-trace links — the raw material for span-tree reconstruction
    /// ([`crate::critical`]).
    pub fn snapshot(&self) -> (Vec<SpanEvent>, Vec<SpanLink>) {
        let st = self.lock();
        (st.ring.iter().copied().collect(), st.links.clone())
    }

    /// The retained spans as a JSON document:
    /// `{ "dropped": n, "events": [ {..}, ... ] }`, oldest first.
    pub fn events_json(&self) -> String {
        let st = self.lock();
        let mut out = String::new();
        out.push_str(&format!("{{\n  \"dropped\": {},\n  \"events\": [", st.ring.overwritten()));
        for (i, ev) in st.ring.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{ \"seq\": {}, \"class\": \"{}\", \"layer\": \"{}\", \"start_ns\": {}, \"end_ns\": {}, \"bytes\": {}, \"trace\": {}, \"span\": {}, \"parent\": {} }}",
                ev.seq,
                ev.class.name(),
                ev.class.layer(),
                ev.start.as_nanos(),
                ev.end.as_nanos(),
                ev.bytes,
                ev.trace,
                ev.span,
                ev.parent
            ));
        }
        if !st.ring.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}");
        out
    }

    /// The retained spans as a Chrome-trace (`chrome://tracing` /
    /// Perfetto) document. Each layer renders as its own thread;
    /// timestamps are virtual-time microseconds.
    pub fn chrome_trace(&self) -> String {
        let st = self.lock();
        let mut out = String::new();
        out.push_str("{ \"displayTimeUnit\": \"ms\", \"traceEvents\": [");
        let mut first = true;
        for tid in 0u32..5 {
            let layer = match tid {
                0 => "engine",
                1 => "ext4",
                2 => "ssd",
                3 => "server",
                _ => "repl",
            };
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n  {{ \"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": {tid}, \"args\": {{ \"name\": \"{layer}\" }} }}"
            ));
        }
        for ev in st.ring.iter() {
            let ts = ev.start.as_nanos();
            let dur = ev.duration().as_nanos();
            out.push_str(&format!(
                ",\n  {{ \"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"X\", \"ts\": {}.{:03}, \"dur\": {}.{:03}, \"pid\": 0, \"tid\": {}, \"args\": {{ \"seq\": {}, \"bytes\": {}, \"trace\": {}, \"span\": {}, \"parent\": {} }} }}",
                ev.class.name(),
                ev.class.layer(),
                ts / 1000,
                ts % 1000,
                dur / 1000,
                dur % 1000,
                ev.class.tid(),
                ev.seq,
                ev.bytes,
                ev.trace,
                ev.span,
                ev.parent
            ));
        }
        // Flow arrows bind each traced child slice to its parent slice,
        // so chrome://tracing / Perfetto draws the causal tree across the
        // layer threads (slices alone only nest within one tid).
        let by_span: std::collections::HashMap<u64, &SpanEvent> =
            st.ring.iter().filter(|e| e.span != 0).map(|e| (e.span, e)).collect();
        for ev in st.ring.iter() {
            if ev.parent == 0 {
                continue;
            }
            let Some(parent) = by_span.get(&ev.parent) else { continue };
            for (ph, anchor, tid) in [("s", *parent, parent.class.tid()), ("f", ev, ev.class.tid())]
            {
                let ts = anchor.start.as_nanos();
                out.push_str(&format!(
                    ",\n  {{ \"name\": \"causal\", \"cat\": \"causal\", \"ph\": \"{ph}\", \"id\": {}, \"pid\": 0, \"tid\": {tid}, \"ts\": {}.{:03}{} }}",
                    ev.span,
                    ts / 1000,
                    ts % 1000,
                    if ph == "f" { ", \"bp\": \"e\"" } else { "" }
                ));
            }
        }
        out.push_str("\n] }");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(v: u64) -> Nanos {
        Nanos::from_nanos(v)
    }

    #[test]
    fn clones_share_state() {
        let sink = TraceSink::new();
        let other = sink.clone();
        sink.emit(EventClass::SsdWrite, ns(0), ns(100), 4096);
        other.emit(EventClass::SsdWrite, ns(200), ns(350), 4096);
        let s = sink.summary();
        assert_eq!(s.events, 2);
        let c = s.class(EventClass::SsdWrite).unwrap();
        assert_eq!(c.count, 2);
        assert_eq!(c.bytes, 8192);
        assert_eq!(c.max_ns, 150);
    }

    #[test]
    fn stall_captures_causal_chain() {
        let sink = TraceSink::new();
        sink.emit(EventClass::SsdFlush, ns(10), ns(60), 0);
        sink.emit(EventClass::Checkpoint, ns(5), ns(80), 0);
        sink.emit_stall(StallKind::Memtable, ns(20), ns(120));
        let s = sink.summary();
        assert_eq!(s.stall_count, 1);
        assert_eq!(s.stall_total_ns, 100);
        let stall = &s.top_stalls[0];
        assert_eq!(stall.cause_commit.unwrap().class, EventClass::Checkpoint);
        assert_eq!(stall.cause_flush.unwrap().class, EventClass::SsdFlush);
        // The stall also shows up as a span class.
        assert_eq!(s.class(EventClass::WriteStall).unwrap().count, 1);
    }

    #[test]
    fn stall_without_prior_io_has_no_cause() {
        let sink = TraceSink::new();
        sink.emit_stall(StallKind::Slowdown, ns(0), ns(1_000_000));
        let stall = &sink.summary().top_stalls[0];
        assert!(stall.cause_commit.is_none());
        assert!(stall.cause_flush.is_none());
    }

    #[test]
    fn top_stalls_are_longest_first_and_capped() {
        let sink = TraceSink::new();
        for i in 0..200u64 {
            let start = i * 1000;
            sink.emit_stall(StallKind::L0Stop, ns(start), ns(start + 10 + i));
        }
        let s = sink.summary();
        assert_eq!(s.stall_count, 200);
        assert_eq!(s.top_stalls.len(), TraceSummary::TOP_STALLS);
        // The longest stalls (durations 200..209 ns) survive pruning.
        assert_eq!(s.top_stalls[0].duration().as_nanos(), 209);
        for w in s.top_stalls.windows(2) {
            assert!(w[0].duration() >= w[1].duration());
        }
    }

    #[test]
    fn summary_counts_survive_ring_eviction() {
        let sink = TraceSink::with_ring_capacity(8);
        for i in 0..100u64 {
            sink.emit(EventClass::EnginePut, ns(i * 10), ns(i * 10 + 3), 16);
        }
        let s = sink.summary();
        assert_eq!(s.events, 100);
        assert_eq!(s.dropped, 92);
        assert_eq!(s.class(EventClass::EnginePut).unwrap().count, 100);
    }

    #[test]
    fn exports_are_valid_shapes() {
        let sink = TraceSink::new();
        sink.emit(EventClass::JournalCommit, ns(1000), ns(3500), 8192);
        let events = sink.events_json();
        assert!(events.contains("\"class\": \"journal_commit\""));
        assert!(events.contains("\"start_ns\": 1000"));
        let chrome = sink.chrome_trace();
        assert!(chrome.contains("\"ph\": \"X\""));
        assert!(chrome.contains("\"ts\": 1.000"));
        assert!(chrome.contains("\"dur\": 2.500"));
        assert!(chrome.contains("\"traceEvents\""));
    }

    #[test]
    fn reset_clears_everything() {
        let sink = TraceSink::with_ring_capacity(16);
        sink.emit(EventClass::SsdRead, ns(0), ns(5), 512);
        sink.emit_stall(StallKind::Memtable, ns(0), ns(9));
        sink.reset();
        let s = sink.summary();
        assert_eq!(s.events, 0);
        assert_eq!(s.stall_count, 0);
        assert!(s.classes.is_empty());
    }
}
