//! Changefeed correctness under adversarial schedules: whatever the
//! interleaving of leader writes, follower polls, subscriber polls,
//! reconnects and one leader-kill failover, a subscriber that started at
//! an arbitrary sequence must see every record from that point on
//! exactly once, in order, with no gap across any reconnect or the
//! promotion.

use nob_repl::{shared, Follower, FollowerLink, Leader, ReplCore, ReplLoopback, Subscription};
use nob_sim::SharedClock;
use nob_store::{Store, StoreOptions};
use noblsm::{WriteBatch, WriteOptions};
use proptest::prelude::*;

/// One shard keeps the sequence chain globally ordered, which is what
/// the per-shard contract says (cross-shard order is unspecified).
fn new_pair() -> (nob_repl::SharedRepl, FollowerLink<ReplLoopback>) {
    let opts = StoreOptions { shards: 1, ..StoreOptions::default() };
    let clock = SharedClock::new();
    let leader = Store::open_with_clock(opts.clone(), clock.clone()).expect("open leader");
    let follower = Store::open_with_clock(opts, clock).expect("open follower");
    let core = shared(ReplCore::new(Leader::new(leader, 1)));
    let mut link = FollowerLink::new(ReplLoopback::connect(&core), Follower::new(follower, 1));
    link.subscribe().expect("subscribe");
    (core, link)
}

fn write_one(core: &nob_repl::SharedRepl, n: u64) {
    let mut b = WriteBatch::new();
    b.put(format!("k{n:05}").as_bytes(), format!("v{n}").as_bytes());
    core.borrow_mut().leader_mut().write(&WriteOptions::default(), b).expect("write");
}

/// Drains `sub`, recording each record's sequence range.
fn drain(sub: &mut Subscription<ReplLoopback>, seen: &mut Vec<(u64, u64)>) {
    loop {
        let recs = sub.poll().expect("poll");
        if recs.is_empty() {
            return;
        }
        for r in recs {
            seen.push((r.first_seq, r.last_seq));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The schedule drives four actions — write (0), subscriber poll
    /// (1), subscriber reconnect (2), follower poll (3) — then kills
    /// the leader, promotes the follower and replays a second schedule
    /// against the new leader. The subscriber must deliver exactly the
    /// sequences `from..=total`, each once, in order, regardless of
    /// where its subscription started or how often it reconnected.
    #[test]
    fn reconnecting_subscriber_sees_exactly_once_in_order(
        from_seq in 0u64..40,
        phase1 in proptest::collection::vec(0u8..4, 4..40),
        phase2 in proptest::collection::vec(0u8..4, 0..25),
    ) {
        let (core, mut link) = new_pair();
        let mut sub =
            Subscription::start(ReplLoopback::connect(&core), 0, from_seq).expect("start");
        let mut seen: Vec<(u64, u64)> = Vec::new();
        let mut written = 0u64;

        let mut core = core;
        for step in &phase1 {
            match step {
                0 => { written += 1; write_one(&core, written); }
                1 => drain(&mut sub, &mut seen),
                2 => sub = sub.resume(ReplLoopback::connect(&core)).expect("resume"),
                _ => { link.poll_until_idle().expect("link poll"); }
            }
        }
        // The follower must hold everything the feed could have seen
        // before the old leader dies (the feed reads the leader's log,
        // which dies with it; the follower's copy is what survives).
        link.poll_until_idle().expect("catch up");
        drain(&mut sub, &mut seen);

        let new_leader = link.into_follower().promote();
        prop_assert_eq!(new_leader.epoch(), 2);
        core.borrow_mut().leader_mut().fence(2);
        drop(core);
        core = shared(ReplCore::new(new_leader));
        sub = sub.resume(ReplLoopback::connect(&core)).expect("resume across failover");

        for step in &phase2 {
            match step {
                0 => { written += 1; write_one(&core, written); }
                1 => drain(&mut sub, &mut seen),
                2 => sub = sub.resume(ReplLoopback::connect(&core)).expect("resume"),
                _ => {} // the promoted leader has no follower link
            }
        }
        drain(&mut sub, &mut seen);

        // Exactly-once, in-order, gap-free from the subscribed point.
        let mut next = from_seq.max(1);
        for (first, last) in &seen {
            prop_assert_eq!(*first, next, "contiguous from the subscribed sequence");
            prop_assert!(last >= first);
            next = last + 1;
        }
        if from_seq.max(1) <= written {
            prop_assert_eq!(next, written + 1, "every record from the start point delivered");
        } else {
            prop_assert!(seen.is_empty(), "a future start point delivers nothing");
        }
    }
}
