//! `nob-repl` — WAL-shipping replication for the NobLSM stack:
//! changefeeds, bounded-staleness follower reads, and epoch-fenced
//! failover.
//!
//! # Model
//!
//! A [`Leader`] wraps a [`nob_store::Store`] with group shipping enabled:
//! every coalesced group commit is captured as the *exact* WAL batch
//! payload the shard engine logged, tagged with the contiguous sequence
//! range the engine assigned it, and appended to a retained
//! [`ChangeLog`]. A [`Follower`] owns an identical store and applies the
//! records in sequence order; because both engines assign sequence
//! numbers deterministically, the follower's per-shard `last_sequence`
//! converges on the leader's, and the apply path verifies that on every
//! record.
//!
//! Records flow over the serving crate's [`nob_server::Transport`]
//! abstraction: [`ReplLoopback`] runs the whole pipeline in-process on
//! virtual time (deterministic tests), [`ReplTcpServer`] serves the same
//! byte protocol over real sockets.
//!
//! # Consistency contract
//!
//! * **Writes** go to the leader only; a fenced leader (one that has
//!   observed a higher epoch) refuses them with
//!   [`noblsm::Error::Replication`].
//! * **Follower reads** are bounded-staleness: pass
//!   [`ReadOptions::max_staleness`](noblsm::ReadOptions::max_staleness)
//!   and the read fails rather than serve data older than the bound,
//!   measured on the *leader's* clock (heartbeat instant minus the
//!   commit instant of the last applied record).
//! * **Changefeeds** ([`Subscription`]) deliver each committed record
//!   exactly once, in order, resumable from any sequence number across
//!   disconnects and failovers.
//! * **Failover**: promote the follower ([`Follower::promote`] bumps the
//!   epoch), fence the old leader ([`Leader::fence`]). Every write the
//!   old leader acknowledged is on the follower or in the retained log;
//!   writes the old leader accepted but never shipped are lost with it —
//!   that is the asynchronous-replication contract, and the chaos
//!   campaign (`nob-chaos`) verifies the *acked* half of it.
//!
//! # Example
//!
//! ```
//! use nob_repl::{shared, Follower, FollowerLink, Leader, ReplCore, ReplLoopback};
//! use nob_store::{Store, StoreOptions};
//! use noblsm::{ReadOptions, WriteBatch, WriteOptions};
//!
//! # fn main() -> noblsm::Result<()> {
//! let opts = StoreOptions { shards: 2, ..StoreOptions::default() };
//! let leader = Leader::new(Store::open(opts.clone())?, 1);
//! let follower = Follower::new(Store::open(opts)?, 1);
//!
//! let core = shared(ReplCore::new(leader));
//! let mut link = FollowerLink::new(ReplLoopback::connect(&core), follower);
//! link.subscribe()?;
//!
//! let mut batch = WriteBatch::new();
//! batch.put(b"k", b"v");
//! core.borrow_mut().leader_mut().write(&WriteOptions::default(), batch)?;
//!
//! link.poll_until_idle()?;
//! assert_eq!(link.get(&ReadOptions::default(), b"k")?.as_deref(), Some(&b"v"[..]));
//! # Ok(())
//! # }
//! ```

pub mod changelog;
pub mod core;
pub mod follower;
pub mod leader;
pub mod subscriber;
pub mod tcp;
pub mod wire;

pub use changelog::{ChangeLog, LogRecord};
pub use core::{shared, ReplConnId, ReplCore, ReplLoopback, SharedRepl};
pub use follower::Follower;
pub use leader::Leader;
pub use noblsm::{Error, Result};
pub use subscriber::{FollowerLink, Subscription};
pub use tcp::ReplTcpServer;

#[cfg(test)]
mod tests {
    use nob_metrics::MetricsHub;
    use nob_sim::Nanos;
    use nob_store::{Store, StoreOptions};
    use nob_trace::{EventClass, TraceSink};
    use noblsm::{ReadOptions, WriteBatch, WriteOptions};

    use super::*;

    fn opts(shards: usize) -> StoreOptions {
        StoreOptions { shards, ..StoreOptions::default() }
    }

    fn pair(shards: usize) -> (SharedRepl, FollowerLink<ReplLoopback>) {
        let clock = nob_sim::SharedClock::new();
        let leader = Leader::new(Store::open_with_clock(opts(shards), clock.clone()).unwrap(), 1);
        let follower = Follower::new(Store::open_with_clock(opts(shards), clock).unwrap(), 1);
        let core = shared(ReplCore::new(leader));
        let mut link = FollowerLink::new(ReplLoopback::connect(&core), follower);
        link.subscribe().unwrap();
        (core, link)
    }

    fn put(core: &SharedRepl, key: &[u8], val: &[u8]) {
        let mut b = WriteBatch::new();
        b.put(key, val);
        core.borrow_mut().leader_mut().write(&WriteOptions::default(), b).unwrap();
    }

    #[test]
    fn writes_replicate_and_follower_serves_them() {
        let (core, mut link) = pair(4);
        for i in 0..100u64 {
            put(&core, format!("key{i:03}").as_bytes(), format!("val{i}").as_bytes());
        }
        let applied = link.poll_until_idle().unwrap();
        assert_eq!(applied as u64, core.borrow().leader().store().stats().groups);
        for i in 0..100u64 {
            let got = link.get(&ReadOptions::default(), format!("key{i:03}").as_bytes()).unwrap();
            assert_eq!(got.as_deref(), Some(format!("val{i}").as_bytes()), "key{i:03}");
        }
        // The follower's engines converged on the leader's sequences.
        assert_eq!(link.follower().shard_seqs(), core.borrow().leader().store().shard_seqs());
        // Acks flowed back: the leader knows the follower is current.
        assert_eq!(core.borrow().leader().acked_seqs(), link.follower().shard_seqs().as_slice());
    }

    #[test]
    fn deletes_replicate_too() {
        let (core, mut link) = pair(2);
        put(&core, b"doomed", b"v");
        let mut b = WriteBatch::new();
        b.delete(b"doomed");
        core.borrow_mut().leader_mut().write(&WriteOptions::default(), b).unwrap();
        link.poll_until_idle().unwrap();
        assert_eq!(link.get(&ReadOptions::default(), b"doomed").unwrap(), None);
    }

    #[test]
    fn bounded_staleness_is_satisfied_after_catchup() {
        let (core, mut link) = pair(1);
        put(&core, b"k", b"v1");
        put(&core, b"k", b"v2");
        link.poll_until_idle().unwrap();
        // Caught up: the last applied record carries the latest commit
        // instant, and the heartbeat in the same poll carries the leader
        // clock — staleness is the gap between them, which a generous
        // bound satisfies.
        let strict = ReadOptions::default().with_max_staleness(Nanos::from_secs(1));
        assert_eq!(link.get(&strict, b"k").unwrap().as_deref(), Some(&b"v2"[..]));
        // More writes, another catch-up: still satisfiable.
        put(&core, b"k", b"v3");
        link.poll_until_idle().unwrap();
        assert_eq!(link.get(&strict, b"k").unwrap().as_deref(), Some(&b"v3"[..]));
    }

    #[test]
    fn stale_read_fails_with_replication_error() {
        let (core, mut link) = pair(1);
        put(&core, b"k", b"v1");
        link.poll_until_idle().unwrap();
        // Leader moves on; follower only hears the heartbeat (the clock
        // advanced past the unapplied commit) once it polls — so simulate
        // the lag window by feeding the heartbeat state directly.
        put(&core, b"k", b"v2");
        let (_, leader_now, _) = core.borrow().leader().heartbeat();
        link.follower_mut().observe_heartbeat(1, leader_now).unwrap();
        let bound = ReadOptions::default().with_max_staleness(Nanos::from_nanos(1));
        let err = link.get(&bound, b"k").unwrap_err();
        assert!(matches!(err, Error::Replication(_)), "{err}");
        // Unbounded reads still serve the old value.
        assert_eq!(link.get(&ReadOptions::default(), b"k").unwrap().as_deref(), Some(&b"v1"[..]));
        // After catching up, a bound covering the heartbeat round-trip is
        // satisfiable again (staleness never reaches zero exactly: the
        // heartbeat instant trails the last commit by the ship latency).
        link.poll_until_idle().unwrap();
        let loose = ReadOptions::default().with_max_staleness(Nanos::from_millis(1));
        assert_eq!(link.get(&loose, b"k").unwrap().as_deref(), Some(&b"v2"[..]));
    }

    #[test]
    fn duplicates_are_skipped_after_resubscribe() {
        let (core, mut link) = pair(2);
        for i in 0..20u64 {
            put(&core, format!("k{i}").as_bytes(), b"v");
        }
        link.poll_until_idle().unwrap();
        let seqs = link.follower().shard_seqs();
        // Reconnect and deliberately subscribe from seq 1 (not from the
        // follower's resume point): the server replays everything the
        // follower already applied, and apply() skips every duplicate
        // instead of double-writing.
        use nob_server::Transport;
        let mut transport = ReplLoopback::connect(&core);
        let mut wire = Vec::new();
        for shard in 0..2u32 {
            crate::wire::encode(&crate::wire::Frame::Subscribe { shard, from_seq: 1 }, &mut wire);
        }
        transport.send(&wire).unwrap();
        let mut link = FollowerLink::new(transport, link.into_follower());
        let applied = link.poll_until_idle().unwrap();
        assert_eq!(applied, 0, "every replayed record is a skipped duplicate");
        assert_eq!(link.follower().shard_seqs(), seqs);
    }

    #[test]
    fn gap_detection_refuses_a_hole() {
        let clock = nob_sim::SharedClock::new();
        let mut leader = Leader::new(Store::open_with_clock(opts(1), clock.clone()).unwrap(), 1);
        let mut follower = Follower::new(Store::open_with_clock(opts(1), clock).unwrap(), 1);
        for i in 0..3u64 {
            let mut b = WriteBatch::new();
            b.put(format!("k{i}").as_bytes(), b"v");
            leader.write(&WriteOptions::default(), b).unwrap();
        }
        let recs = leader.log().records_from(0, 1).unwrap().to_vec();
        follower.apply(&recs[0]).unwrap();
        // Skip recs[1]: gap.
        let err = follower.apply(&recs[2]).unwrap_err();
        assert!(matches!(err, Error::Replication(_)), "{err}");
        // Healing the gap resumes cleanly.
        follower.apply(&recs[1]).unwrap();
        assert!(follower.apply(&recs[2]).unwrap());
        assert_eq!(follower.next_seq(0), 4);
    }

    #[test]
    fn changefeed_delivers_exactly_once_across_resume() {
        let (core, _link) = pair(1);
        for i in 0..10u64 {
            put(&core, format!("k{i}").as_bytes(), format!("v{i}").as_bytes());
        }
        let mut sub = Subscription::start(ReplLoopback::connect(&core), 0, 1).unwrap();
        let first = sub.poll().unwrap();
        assert!(!first.is_empty());
        let seen_through = first.last().unwrap().last_seq;
        // Disconnect (drop) mid-stream and resume on a new transport.
        let sub = sub.resume(ReplLoopback::connect(&core)).unwrap();
        let mut sub = sub;
        for i in 10..20u64 {
            put(&core, format!("k{i}").as_bytes(), format!("v{i}").as_bytes());
        }
        let rest = sub.poll().unwrap();
        // Exactly once, in order, no overlap with the first poll.
        let mut last = seen_through;
        for rec in &rest {
            assert_eq!(rec.first_seq, last + 1, "gap-free and duplicate-free");
            last = rec.last_seq;
        }
        assert_eq!(last, core.borrow().leader().store().shard_seqs()[0]);
    }

    #[test]
    fn promotion_fences_the_old_leader_and_keeps_acked_writes() {
        let (core, mut link) = pair(2);
        for i in 0..30u64 {
            put(&core, format!("key{i:02}").as_bytes(), format!("val{i}").as_bytes());
        }
        link.poll_until_idle().unwrap();

        // Leader "dies"; the follower is promoted.
        let follower = link.into_follower();
        let old_seqs = follower.shard_seqs();
        let mut new_leader = follower.promote();
        assert_eq!(new_leader.epoch(), 2);
        // Every acked write survives on the new leader.
        for i in 0..30u64 {
            let got = new_leader
                .store_mut()
                .get(&ReadOptions::default(), format!("key{i:02}").as_bytes())
                .unwrap();
            assert_eq!(got.as_deref(), Some(format!("val{i}").as_bytes()));
        }
        // New writes continue the same sequence chains.
        let mut b = WriteBatch::new();
        b.put(b"post-failover", b"v");
        new_leader.write(&WriteOptions::default(), b).unwrap();
        let new_seqs = new_leader.store().shard_seqs();
        assert!(new_seqs.iter().zip(&old_seqs).all(|(n, o)| n >= o));

        // The old leader observes the new epoch and is fenced.
        let mut old = core.borrow_mut();
        assert!(old.leader_mut().fence(2));
        let mut b = WriteBatch::new();
        b.put(b"zombie", b"write");
        let err = old.leader_mut().write(&WriteOptions::default(), b).unwrap_err();
        assert!(matches!(err, Error::Replication(_)), "{err}");
    }

    #[test]
    fn changefeed_resumes_against_promoted_follower() {
        let (core, mut link) = pair(1);
        for i in 0..10u64 {
            put(&core, format!("k{i}").as_bytes(), b"v");
        }
        link.poll_until_idle().unwrap();
        let mut sub = Subscription::start(ReplLoopback::connect(&core), 0, 1).unwrap();
        let first = sub.poll().unwrap();
        let seen: u64 = first.last().unwrap().last_seq;
        assert!(seen > 0);

        // Failover: promote the follower, serve it through a new core.
        let new_leader = link.into_follower().promote();
        let new_core = shared(ReplCore::new(new_leader));
        {
            let mut b = WriteBatch::new();
            b.put(b"after", b"failover");
            new_core.borrow_mut().leader_mut().write(&WriteOptions::default(), b).unwrap();
        }
        // Resume the changefeed against the new leader: no gap, no
        // duplicate, and the post-failover record arrives.
        let mut sub = sub.resume(ReplLoopback::connect(&new_core)).unwrap();
        let rest = sub.poll().unwrap();
        let mut last = seen;
        for rec in &rest {
            assert_eq!(rec.first_seq, last + 1);
            last = rec.last_seq;
        }
        assert_eq!(last, new_core.borrow().leader().store().shard_seqs()[0]);
        let epochs: std::collections::BTreeSet<u64> = rest.iter().map(|r| r.epoch).collect();
        assert!(epochs.contains(&2), "the post-failover record carries the new epoch");
    }

    #[test]
    fn repl_spans_and_lag_gauge_flow() {
        let sink = TraceSink::new();
        let hub = MetricsHub::new().with_period(Nanos::from_millis(1));
        let (core, mut link) = pair(1);
        core.borrow_mut().leader_mut().set_trace_sink(sink.clone());
        core.borrow().leader().install_metrics(&hub);
        link.follower_mut().set_trace_sink(sink.clone());
        for i in 0..10u64 {
            put(&core, format!("k{i}").as_bytes(), &[0u8; 64]);
        }
        link.poll_until_idle().unwrap();
        assert!(sink.histogram(EventClass::ReplShip).count() > 0, "ship spans");
        assert!(sink.histogram(EventClass::ReplApply).count() > 0, "apply spans");
        assert!(sink.histogram(EventClass::ReplAck).count() > 0, "ack spans");
        assert!(core.borrow().leader().replication_lag() >= Nanos::ZERO);
        let now = core.borrow().leader().store().clock().now();
        hub.sample_due(now, &[]);
        let tl = hub.timeline();
        assert!(tl.series.iter().any(|s| s.name == "repl.lag_nanos"), "lag gauge registered");
    }

    #[test]
    fn identical_runs_are_deterministic() {
        let run = || {
            let (core, mut link) = pair(2);
            for i in 0..50u64 {
                put(&core, format!("key{i:02}").as_bytes(), &[i as u8; 32]);
                if i % 7 == 6 {
                    link.poll_until_idle().unwrap();
                }
            }
            link.poll_until_idle().unwrap();
            let lag = core.borrow().leader().replication_lag();
            let seqs = link.follower().shard_seqs();
            let now = core.borrow().leader().store().clock().now();
            (lag, seqs, now)
        };
        assert_eq!(run(), run());
    }
}
