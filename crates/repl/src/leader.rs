//! The replication leader: a [`Store`] whose committed groups are
//! absorbed into a [`ChangeLog`] and served to subscribers, under an
//! epoch that fences it out after failover.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use nob_metrics::{MetricKind, MetricsHub};
use nob_sim::Nanos;
use nob_store::{ShippedRecord, Store, StoreOptions};
use nob_trace::{EventClass, TraceCtx, TraceSink};
use noblsm::{Error, Result, WriteBatch, WriteOptions};

use crate::changelog::{ChangeLog, LogRecord};

/// A leader wraps a store with shipping enabled. Every committed group is
/// [`absorb`](Leader::absorb)ed into the change log under the leader's
/// current epoch; [`fence`](Leader::fence)d leaders refuse writes, which
/// is the safety half of failover (the liveness half is
/// [`Follower::promote`](crate::Follower::promote)).
pub struct Leader {
    store: Store,
    log: ChangeLog,
    epoch: u64,
    fenced: bool,
    /// Highest acknowledged sequence per shard.
    acked: Vec<u64>,
    /// Most recent per-record replication lag, in nanos (shared with the
    /// metrics gauge).
    lag_nanos: Arc<AtomicU64>,
    /// Records absorbed into the change log (shared with the metrics
    /// counter).
    shipped_total: Arc<AtomicU64>,
    /// Highest acknowledged sequence across shards (shared with the
    /// metrics gauge).
    acked_seq_max: Arc<AtomicU64>,
    trace: Option<TraceSink>,
}

impl Leader {
    /// Wraps `store` as the epoch-`epoch` leader, enabling group shipping.
    /// Groups committed before this call are not in the change log.
    pub fn new(mut store: Store, epoch: u64) -> Leader {
        store.enable_shipping();
        let shards = store.shards();
        let log = ChangeLog::new(shards);
        Leader {
            store,
            log,
            epoch,
            fenced: false,
            acked: vec![0; shards],
            lag_nanos: Arc::new(AtomicU64::new(0)),
            shipped_total: Arc::new(AtomicU64::new(0)),
            acked_seq_max: Arc::new(AtomicU64::new(0)),
            trace: None,
        }
    }

    /// Opens a fresh store and wraps it as the epoch-`epoch` leader.
    ///
    /// # Errors
    ///
    /// As for [`Store::open`].
    pub fn open(opts: StoreOptions, epoch: u64) -> Result<Leader> {
        Ok(Leader::new(Store::open(opts)?, epoch))
    }

    /// Re-wraps a promoted follower's store and log under `epoch`
    /// (internal to [`Follower::promote`](crate::Follower::promote)).
    pub(crate) fn with_log(mut store: Store, log: ChangeLog, epoch: u64) -> Leader {
        store.enable_shipping();
        let shards = store.shards();
        Leader {
            store,
            log,
            epoch,
            fenced: false,
            acked: vec![0; shards],
            lag_nanos: Arc::new(AtomicU64::new(0)),
            shipped_total: Arc::new(AtomicU64::new(0)),
            acked_seq_max: Arc::new(AtomicU64::new(0)),
            trace: None,
        }
    }

    /// The current leadership epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether this leader has been fenced by a higher epoch.
    pub fn fenced(&self) -> bool {
        self.fenced
    }

    /// The wrapped store.
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// Mutable access to the wrapped store, for reads, ticking and crash
    /// injection. Writes issued directly are still captured — the next
    /// [`absorb`](Leader::absorb) folds them into the change log — but
    /// they bypass the fencing check, so route writes through
    /// [`write`](Leader::write) whenever the epoch matters.
    pub fn store_mut(&mut self) -> &mut Store {
        &mut self.store
    }

    /// The retained change log.
    pub fn log(&self) -> &ChangeLog {
        &self.log
    }

    /// Highest acknowledged sequence per shard.
    pub fn acked_seqs(&self) -> &[u64] {
        &self.acked
    }

    /// The most recently measured per-record replication lag.
    pub fn replication_lag(&self) -> Nanos {
        Nanos::from_nanos(self.lag_nanos.load(Ordering::Relaxed))
    }

    /// Records absorbed into the change log since this leader was
    /// created (the `repl.shipped_records` counter).
    pub fn shipped_records(&self) -> u64 {
        self.shipped_total.load(Ordering::Relaxed)
    }

    /// Highest acknowledged sequence across shards (the `repl.acked_seq`
    /// gauge).
    pub fn acked_seq(&self) -> u64 {
        self.acked_seq_max.load(Ordering::Relaxed)
    }

    fn check_fenced(&self) -> Result<()> {
        if self.fenced {
            return Err(Error::Replication(format!(
                "leader fenced: epoch {} is no longer current",
                self.epoch
            )));
        }
        Ok(())
    }

    /// Writes `batch` through the store's group commit and absorbs the
    /// shipped records into the change log.
    ///
    /// # Errors
    ///
    /// [`noblsm::Error::Replication`] when fenced; engine errors pass
    /// through.
    pub fn write(&mut self, wopts: &WriteOptions, batch: WriteBatch) -> Result<Nanos> {
        self.check_fenced()?;
        let end = self.store.write(wopts, batch)?;
        self.absorb()?;
        Ok(end)
    }

    /// Enqueues without committing (group-commit experiments drive
    /// [`pump`](Leader::pump) themselves).
    ///
    /// # Errors
    ///
    /// [`noblsm::Error::Replication`] when fenced.
    pub fn enqueue(
        &mut self,
        wopts: &WriteOptions,
        batch: &WriteBatch,
    ) -> Result<nob_store::Ticket> {
        self.check_fenced()?;
        Ok(self.store.enqueue(wopts, batch))
    }

    /// One scheduler round over the store, absorbing whatever committed.
    ///
    /// # Errors
    ///
    /// [`noblsm::Error::Replication`] when fenced; engine errors pass
    /// through.
    pub fn pump(&mut self) -> Result<usize> {
        self.check_fenced()?;
        let n = self.store.pump()?;
        self.absorb()?;
        Ok(n)
    }

    /// Drains the store queue entirely, absorbing every committed group.
    ///
    /// # Errors
    ///
    /// As for [`pump`](Leader::pump).
    pub fn drain(&mut self) -> Result<Nanos> {
        self.check_fenced()?;
        let end = self.store.drain()?;
        self.absorb()?;
        Ok(end)
    }

    /// Folds the store's shipped records into the change log under the
    /// current epoch, emitting one `repl_ship` span per record.
    ///
    /// # Errors
    ///
    /// [`noblsm::Error::Replication`] if a shipped record does not extend
    /// its shard's chain (cannot happen unless the store was mutated
    /// behind the leader's back between absorbs after a promotion).
    pub fn absorb(&mut self) -> Result<()> {
        let records = self.store.take_shipped();
        self.absorb_shipped(records)
    }

    /// Folds externally produced shipped records into the change log —
    /// the bridge for deployments where commits flow through a
    /// server-fronted store rather than the leader's own (the embedding
    /// layer drains that store's [`Store::take_shipped`] and hands the
    /// records here). The records must extend each shard's chain and the
    /// producing store must share this leader's clock for the lag and
    /// span timestamps to be meaningful.
    ///
    /// # Errors
    ///
    /// [`noblsm::Error::Replication`] if a record does not extend its
    /// shard's chain.
    pub fn absorb_shipped(&mut self, records: Vec<ShippedRecord>) -> Result<()> {
        let now = self.store.clock().now();
        for rec in records {
            let committed_at = rec.committed_at;
            let bytes = rec.payload.len() as u64;
            let mut lr = LogRecord::from_shipped(rec, self.epoch);
            if let Some(sink) = &self.trace {
                // The ship span is a child of the group-commit span that
                // produced the record; the log (and the wire) carry its
                // identity so the follower's apply span extends the same
                // tree.
                let ship = sink.child_ctx(lr.ctx);
                sink.emit_ctx(EventClass::ReplShip, committed_at, now, bytes, ship);
                lr.ctx = ship;
            }
            self.log.append(lr)?;
            self.shipped_total.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Observes `observed_epoch` from a peer; an epoch above the leader's
    /// own fences it permanently. Returns whether the leader is fenced
    /// after the observation.
    pub fn fence(&mut self, observed_epoch: u64) -> bool {
        if observed_epoch > self.epoch {
            self.fenced = true;
        }
        self.fenced
    }

    /// Records a subscriber acknowledgement up to `last_seq` on `shard`
    /// and returns the acked record's replication lag (commit → ack on
    /// the leader clock), emitting a `repl_ack` span. `None` when the ack
    /// is stale (at or below a previous ack) or unknown.
    pub fn ack(&mut self, shard: usize, last_seq: u64) -> Option<Nanos> {
        if shard >= self.acked.len() || last_seq <= self.acked[shard] {
            return None;
        }
        self.acked[shard] = last_seq;
        self.acked_seq_max.fetch_max(last_seq, Ordering::Relaxed);
        let rec = self
            .log
            .records_from(shard, last_seq)
            .ok()
            .and_then(|tail| tail.first())
            .filter(|r| r.last_seq == last_seq)?;
        let now = self.store.clock().now();
        let lag = now.saturating_sub(rec.committed_at);
        self.lag_nanos.store(lag.as_nanos(), Ordering::Relaxed);
        if let Some(sink) = &self.trace {
            // The ack window (commit → ack) covers the ship and apply
            // spans entirely, so it must be their *sibling* — a child of
            // the group-commit span — or it would swallow their
            // critical-path attribution. The log holds the ship span's
            // identity; its parent is the group span.
            let anchor = TraceCtx { trace: rec.ctx.trace, span: rec.ctx.parent, parent: 0 };
            let ack =
                if anchor.is_none() { sink.child_ctx(rec.ctx) } else { sink.child_ctx(anchor) };
            sink.emit_ctx(
                EventClass::ReplAck,
                rec.committed_at,
                now,
                rec.payload.len() as u64,
                ack,
            );
        }
        Some(lag)
    }

    /// The heartbeat triple subscribers key staleness off: current epoch,
    /// the leader clock's instant, and the last committed sequence per
    /// shard.
    pub fn heartbeat(&self) -> (u64, Nanos, Vec<u64>) {
        (self.epoch, self.store.clock().now(), self.store.shard_seqs())
    }

    /// Installs `sink` on the store stack and the leader's own
    /// `repl_ship` / `repl_ack` spans.
    pub fn set_trace_sink(&mut self, sink: TraceSink) {
        self.store.set_trace_sink(sink.clone());
        self.trace = Some(sink);
    }

    /// Removes the trace sink everywhere.
    pub fn clear_trace_sink(&mut self) {
        self.store.clear_trace_sink();
        self.trace = None;
    }

    /// Registers the leader's replication metrics on `hub` (under its
    /// scope): `repl.lag_nanos` (most recent commit→ack lag),
    /// `repl.shipped_records` (records absorbed into the change log) and
    /// `repl.acked_seq` (highest acknowledged sequence across shards).
    pub fn install_metrics(&self, hub: &MetricsHub) {
        let lag = Arc::clone(&self.lag_nanos);
        hub.register(
            MetricKind::Gauge,
            "repl.lag_nanos",
            "Most recent per-record replication lag (commit to ack), nanoseconds",
            move |_| lag.load(Ordering::Relaxed) as f64,
        );
        let shipped = Arc::clone(&self.shipped_total);
        hub.register(
            MetricKind::Counter,
            "repl.shipped_records",
            "WAL records absorbed into the change log for shipping",
            move |_| shipped.load(Ordering::Relaxed) as f64,
        );
        let acked = Arc::clone(&self.acked_seq_max);
        hub.register(
            MetricKind::Gauge,
            "repl.acked_seq",
            "Highest subscriber-acknowledged sequence across shards",
            move |_| acked.load(Ordering::Relaxed) as f64,
        );
    }
}
