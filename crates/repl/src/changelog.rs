//! The retained change stream: per-shard chains of shipped group-commit
//! records.
//!
//! Both sides of a replication pair keep a [`ChangeLog`] — the leader
//! appends records as its store commits them, the follower appends as it
//! applies them. Keeping the log on *both* sides is what makes promotion
//! seamless for subscribers: a changefeed that was following the old
//! leader resumes against the promoted follower from any sequence number
//! the follower has applied, with no gap and no duplicate.

use nob_sim::Nanos;
use nob_store::ShippedRecord;
use nob_trace::TraceCtx;
use noblsm::{Error, Result};

/// One retained record: a shipped group tagged with the leadership epoch
/// it was committed under.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogRecord {
    /// The shard the group committed on.
    pub shard: usize,
    /// Leadership epoch at commit time.
    pub epoch: u64,
    /// Sequence of the group's first entry.
    pub first_seq: u64,
    /// Sequence of the group's last entry.
    pub last_seq: u64,
    /// The WAL batch payload (`noblsm::encode_batch` format).
    pub payload: Vec<u8>,
    /// The group's durable instant on the leader clock.
    pub committed_at: Nanos,
    /// Causal context this record rides under ([`TraceCtx::NONE`] when
    /// untraced). On a leader's log this is the `repl_ship` span's
    /// identity (whose parent is the group-commit span); a follower
    /// stores the identity it received over the wire and parents its
    /// `repl_apply` span beneath it.
    pub ctx: TraceCtx,
}

impl LogRecord {
    /// Tags a store-shipped record with its epoch, carrying the group's
    /// causal context (the leader's absorb replaces it with the ship
    /// span's identity once that span is minted).
    pub fn from_shipped(rec: ShippedRecord, epoch: u64) -> LogRecord {
        LogRecord {
            shard: rec.shard,
            epoch,
            first_seq: rec.first_seq,
            last_seq: rec.last_seq,
            payload: rec.payload,
            committed_at: rec.committed_at,
            ctx: rec.ctx,
        }
    }
}

/// Per-shard chains of [`LogRecord`]s with gap-free append and
/// resume-from-sequence reads.
#[derive(Debug, Clone, Default)]
pub struct ChangeLog {
    shards: Vec<Vec<LogRecord>>,
    /// Lowest sequence still retained per shard (1 until truncated).
    base: Vec<u64>,
}

impl ChangeLog {
    /// An empty log over `shards` shards.
    pub fn new(shards: usize) -> ChangeLog {
        ChangeLog { shards: vec![Vec::new(); shards], base: vec![1; shards] }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Records retained for `shard`.
    pub fn len(&self, shard: usize) -> usize {
        self.shards[shard].len()
    }

    /// Whether no shard retains any record.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.is_empty())
    }

    /// The last appended sequence on `shard` (0 before the first record).
    pub fn last_seq(&self, shard: usize) -> u64 {
        self.shards[shard].last().map_or(self.base[shard] - 1, |r| r.last_seq)
    }

    /// The lowest sequence still retained on `shard` — a subscriber
    /// resuming below this has fallen off the log.
    pub fn base_seq(&self, shard: usize) -> u64 {
        self.base[shard]
    }

    /// Appends `rec` to its shard's chain.
    ///
    /// # Errors
    ///
    /// [`noblsm::Error::Replication`] when `rec` does not extend the
    /// chain contiguously (`first_seq` must be the chain's
    /// `last_seq + 1`) or its range is inverted.
    pub fn append(&mut self, rec: LogRecord) -> Result<()> {
        if rec.shard >= self.shards.len() {
            return Err(Error::Replication(format!(
                "record for shard {} but the log has {} shards",
                rec.shard,
                self.shards.len()
            )));
        }
        if rec.last_seq < rec.first_seq {
            return Err(Error::Replication(format!(
                "inverted record range [{}, {}]",
                rec.first_seq, rec.last_seq
            )));
        }
        let expect = self.last_seq(rec.shard) + 1;
        if rec.first_seq != expect {
            return Err(Error::Replication(format!(
                "log gap on shard {}: expected seq {expect}, record starts at {}",
                rec.shard, rec.first_seq
            )));
        }
        self.shards[rec.shard].push(rec);
        Ok(())
    }

    /// The retained records on `shard` containing sequence `from_seq` and
    /// everything after it. `from_seq` past the chain's end is an empty
    /// slice (nothing new yet), not an error.
    ///
    /// # Errors
    ///
    /// [`noblsm::Error::Replication`] when `from_seq` predates the
    /// retained base — the subscriber must re-seed from a snapshot.
    pub fn records_from(&self, shard: usize, from_seq: u64) -> Result<&[LogRecord]> {
        let from_seq = from_seq.max(1);
        if from_seq < self.base[shard] {
            return Err(Error::Replication(format!(
                "shard {shard} seq {from_seq} already truncated (log starts at {})",
                self.base[shard]
            )));
        }
        let chain = &self.shards[shard];
        // First record whose range reaches from_seq.
        let at = chain.partition_point(|r| r.last_seq < from_seq);
        Ok(&chain[at..])
    }

    /// Drops records on `shard` wholly below `seq` (retention). Returns
    /// how many records were dropped.
    pub fn truncate_below(&mut self, shard: usize, seq: u64) -> usize {
        let chain = &mut self.shards[shard];
        let keep = chain.partition_point(|r| r.last_seq < seq);
        chain.drain(..keep);
        self.base[shard] = chain.first().map_or(seq.max(self.base[shard]), |r| r.first_seq);
        keep
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(shard: usize, first: u64, last: u64) -> LogRecord {
        LogRecord {
            shard,
            epoch: 1,
            first_seq: first,
            last_seq: last,
            payload: vec![0xaa; 4],
            committed_at: Nanos::from_micros(first),
            ctx: TraceCtx::NONE,
        }
    }

    #[test]
    fn chains_append_contiguously_per_shard() {
        let mut log = ChangeLog::new(2);
        log.append(rec(0, 1, 3)).unwrap();
        log.append(rec(1, 1, 1)).unwrap();
        log.append(rec(0, 4, 4)).unwrap();
        assert_eq!(log.last_seq(0), 4);
        assert_eq!(log.last_seq(1), 1);
        let err = log.append(rec(0, 6, 7)).unwrap_err();
        assert!(matches!(err, Error::Replication(_)), "{err}");
        let err = log.append(rec(1, 3, 2)).unwrap_err();
        assert!(matches!(err, Error::Replication(_)), "{err}");
    }

    #[test]
    fn records_from_lands_mid_chain() {
        let mut log = ChangeLog::new(1);
        log.append(rec(0, 1, 3)).unwrap();
        log.append(rec(0, 4, 4)).unwrap();
        log.append(rec(0, 5, 9)).unwrap();
        // Sequence 4 starts at the second record.
        let tail = log.records_from(0, 4).unwrap();
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].first_seq, 4);
        // Mid-record sequence lands on the record containing it.
        let tail = log.records_from(0, 7).unwrap();
        assert_eq!(tail.len(), 1);
        assert_eq!(tail[0].first_seq, 5);
        // Past the end: nothing new, not an error.
        assert!(log.records_from(0, 10).unwrap().is_empty());
        // Zero normalizes to "from the beginning".
        assert_eq!(log.records_from(0, 0).unwrap().len(), 3);
    }

    #[test]
    fn truncation_moves_the_base_and_fails_stale_resumes() {
        let mut log = ChangeLog::new(1);
        log.append(rec(0, 1, 3)).unwrap();
        log.append(rec(0, 4, 6)).unwrap();
        log.append(rec(0, 7, 9)).unwrap();
        assert_eq!(log.truncate_below(0, 5), 1, "only the wholly-below record drops");
        assert_eq!(log.base_seq(0), 4);
        assert!(log.records_from(0, 4).is_ok());
        let err = log.records_from(0, 2).unwrap_err();
        assert!(matches!(err, Error::Replication(_)), "{err}");
        // Appends continue from the untouched tail.
        log.append(rec(0, 10, 10)).unwrap();
        assert_eq!(log.last_seq(0), 10);
    }
}
