//! Client-side consumers of the replication stream: the follower link
//! (applies records to a [`Follower`]) and the raw changefeed
//! subscription (hands records to the application).
//!
//! Both are generic over [`nob_server::Transport`], so the identical
//! logic runs over the deterministic loopback and real TCP.

use nob_server::Transport;
use nob_sim::Nanos;
use nob_trace::TraceCtx;
use noblsm::{Error, ReadOptions, Result};

use crate::changelog::LogRecord;
use crate::follower::Follower;
use crate::wire::{encode, Frame, FrameReader};

/// Drives a [`Follower`] over a transport: subscribes every shard from
/// the follower's applied position, applies incoming records, and acks.
pub struct FollowerLink<T: Transport> {
    transport: T,
    follower: Follower,
    reader: FrameReader,
}

impl<T: Transport> FollowerLink<T> {
    /// Pairs `follower` with `transport`. Call
    /// [`subscribe`](FollowerLink::subscribe) before polling.
    pub fn new(transport: T, follower: Follower) -> FollowerLink<T> {
        FollowerLink { transport, follower, reader: FrameReader::new() }
    }

    /// Subscribes every shard from the follower's next needed sequence —
    /// idempotent, and exactly what a reconnect after a disconnect does.
    ///
    /// # Errors
    ///
    /// Transport failures pass through.
    pub fn subscribe(&mut self) -> Result<()> {
        let mut wire = Vec::new();
        for shard in 0..self.follower.store().shards() {
            let from_seq = self.follower.next_seq(shard);
            encode(&Frame::Subscribe { shard: shard as u32, from_seq }, &mut wire);
        }
        self.transport.send(&wire)
    }

    /// One receive round: pulls available bytes, applies every complete
    /// record, acknowledges applied shards, observes heartbeats. Returns
    /// the number of records applied.
    ///
    /// # Errors
    ///
    /// Transport, protocol and apply failures pass through (a sequence
    /// gap or stale epoch is [`noblsm::Error::Replication`]).
    pub fn poll(&mut self) -> Result<usize> {
        let mut bytes = Vec::new();
        self.transport.recv(&mut bytes)?;
        self.reader.feed(&bytes);
        let mut applied = 0;
        let mut acks = Vec::new();
        while let Some(frame) = self.reader.next_frame()? {
            match frame {
                Frame::Record {
                    shard,
                    epoch,
                    first_seq,
                    last_seq,
                    committed_at,
                    trace,
                    span,
                    payload,
                } => {
                    let rec = LogRecord {
                        shard: shard as usize,
                        epoch,
                        first_seq,
                        last_seq,
                        payload,
                        committed_at: Nanos::from_nanos(committed_at),
                        // The wire carries the ship span's identity; its
                        // parent lives on the leader and is not needed to
                        // parent the apply span beneath it.
                        ctx: TraceCtx { trace, span, parent: 0 },
                    };
                    if self.follower.apply(&rec)? {
                        applied += 1;
                        acks.push(Frame::Ack { shard, last_seq });
                    }
                }
                Frame::Heartbeat { epoch, leader_now, .. } => {
                    self.follower.observe_heartbeat(epoch, Nanos::from_nanos(leader_now))?;
                }
                other => {
                    return Err(Error::Replication(format!(
                        "unexpected frame on a follower link: {other:?}"
                    )));
                }
            }
        }
        if !acks.is_empty() {
            let mut wire = Vec::new();
            for ack in &acks {
                encode(ack, &mut wire);
            }
            self.transport.send(&wire)?;
        }
        Ok(applied)
    }

    /// Polls until a round applies nothing — the link has caught up with
    /// everything the leader has shipped. Returns total records applied.
    ///
    /// # Errors
    ///
    /// As for [`poll`](FollowerLink::poll).
    pub fn poll_until_idle(&mut self) -> Result<usize> {
        let mut total = 0;
        loop {
            let n = self.poll()?;
            total += n;
            if n == 0 {
                return Ok(total);
            }
        }
    }

    /// Follower read through the link, honouring
    /// [`ReadOptions::max_staleness`].
    ///
    /// # Errors
    ///
    /// As for [`Follower::get`].
    pub fn get(&mut self, ropts: &ReadOptions<'_>, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.follower.get(ropts, key)
    }

    /// The driven follower.
    pub fn follower(&self) -> &Follower {
        &self.follower
    }

    /// Mutable access to the driven follower.
    pub fn follower_mut(&mut self) -> &mut Follower {
        &mut self.follower
    }

    /// Unpairs, returning the follower (promotion after the leader died).
    pub fn into_follower(self) -> Follower {
        self.follower
    }
}

/// A raw changefeed: streams one shard's committed records to the
/// application, exactly once and in order, resumable across disconnects
/// and leader failovers.
pub struct Subscription<T: Transport> {
    transport: T,
    shard: usize,
    /// The next sequence this subscriber has not delivered.
    next: u64,
    reader: FrameReader,
}

impl<T: Transport> Subscription<T> {
    /// Opens a changefeed on `shard` starting at `from_seq` (use 1, or
    /// `0`, for "from the beginning").
    ///
    /// # Errors
    ///
    /// Transport failures pass through.
    pub fn start(mut transport: T, shard: usize, from_seq: u64) -> Result<Subscription<T>> {
        let next = from_seq.max(1);
        let mut wire = Vec::new();
        encode(&Frame::Subscribe { shard: shard as u32, from_seq: next }, &mut wire);
        transport.send(&wire)?;
        Ok(Subscription { transport, shard, next, reader: FrameReader::new() })
    }

    /// Re-opens this changefeed over a new transport — after a
    /// disconnect, or against a promoted follower after failover —
    /// resuming at the exact next undelivered sequence.
    ///
    /// # Errors
    ///
    /// Transport failures pass through.
    pub fn resume<U: Transport>(self, transport: U) -> Result<Subscription<U>> {
        Subscription::start(transport, self.shard, self.next)
    }

    /// The shard this changefeed follows.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// The next sequence number this changefeed will deliver.
    pub fn next_seq(&self) -> u64 {
        self.next
    }

    /// One receive round: returns the new records delivered (possibly
    /// empty), acknowledging each. Redelivered records — the server
    /// replays from the subscribed point after a resume — are filtered
    /// out, which is what makes delivery exactly-once.
    ///
    /// # Errors
    ///
    /// Transport and protocol failures pass through; a delivered record
    /// that would leave a gap is [`noblsm::Error::Replication`].
    pub fn poll(&mut self) -> Result<Vec<LogRecord>> {
        let mut bytes = Vec::new();
        self.transport.recv(&mut bytes)?;
        self.reader.feed(&bytes);
        let mut out = Vec::new();
        let mut acks = Vec::new();
        while let Some(frame) = self.reader.next_frame()? {
            match frame {
                Frame::Record {
                    shard,
                    epoch,
                    first_seq,
                    last_seq,
                    committed_at,
                    trace,
                    span,
                    payload,
                } => {
                    if shard as usize != self.shard || last_seq < self.next {
                        continue; // other shard, or a redelivered duplicate
                    }
                    if first_seq > self.next {
                        return Err(Error::Replication(format!(
                            "changefeed gap on shard {shard}: expected seq {}, got {first_seq}",
                            self.next
                        )));
                    }
                    self.next = last_seq + 1;
                    acks.push(Frame::Ack { shard, last_seq });
                    out.push(LogRecord {
                        shard: shard as usize,
                        epoch,
                        first_seq,
                        last_seq,
                        payload,
                        committed_at: Nanos::from_nanos(committed_at),
                        ctx: TraceCtx { trace, span, parent: 0 },
                    });
                }
                Frame::Heartbeat { .. } => {}
                other => {
                    return Err(Error::Replication(format!(
                        "unexpected frame on a changefeed: {other:?}"
                    )));
                }
            }
        }
        if !acks.is_empty() {
            let mut wire = Vec::new();
            for ack in &acks {
                encode(ack, &mut wire);
            }
            self.transport.send(&wire)?;
        }
        Ok(out)
    }
}
