//! The replication wire protocol: length-prefixed little-endian frames.
//!
//! Every frame is `u32 length ++ u8 kind ++ body`, where `length` counts
//! the kind byte plus the body. The codec is encode/decode symmetric and
//! incremental: [`FrameReader`] buffers partial frames across `recv`
//! boundaries, so the same parser serves the loopback transport (whole
//! frames per call) and TCP (arbitrary splits).
//!
//! A malformed frame — unknown kind, truncated body, trailing bytes — is
//! a protocol error ([`noblsm::Error::Replication`]), never a silent
//! skip: replication peers share a versioned format, and disagreement
//! means the stream cannot be trusted.

use noblsm::{Error, Result};

/// One replication protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Client → leader: stream shard `shard`'s records starting at the
    /// first record containing `from_seq`.
    Subscribe {
        /// Shard to subscribe to.
        shard: u32,
        /// First sequence number the subscriber has not seen.
        from_seq: u64,
    },
    /// Leader → client: one shipped group-commit record.
    Record {
        /// Shard the group committed on.
        shard: u32,
        /// Leadership epoch the record was shipped under.
        epoch: u64,
        /// Sequence of the record's first entry.
        first_seq: u64,
        /// Sequence of the record's last entry.
        last_seq: u64,
        /// The group's durable instant on the leader clock, in nanos.
        committed_at: u64,
        /// Trace id of the record's `repl_ship` span (0 when untraced).
        trace: u64,
        /// Span id of the record's `repl_ship` span (0 when untraced).
        span: u64,
        /// The WAL batch payload (`noblsm::encode_batch` format).
        payload: Vec<u8>,
    },
    /// Client → leader: everything up to `last_seq` on `shard` is applied
    /// durably on the subscriber's side.
    Ack {
        /// Shard being acknowledged.
        shard: u32,
        /// Highest applied sequence on that shard.
        last_seq: u64,
    },
    /// Leader → client: liveness plus the leader's view of time and
    /// progress; the staleness clock for bounded follower reads.
    Heartbeat {
        /// The leader's current epoch.
        epoch: u64,
        /// The leader clock's current instant, in nanos.
        leader_now: u64,
        /// Last committed sequence per shard, in shard order.
        shard_seqs: Vec<u64>,
    },
    /// Peer → leader: a higher epoch exists; stop accepting writes.
    Fence {
        /// The epoch of the new leadership.
        epoch: u64,
    },
}

/// Frame kind tags (the byte after the length prefix).
const KIND_SUBSCRIBE: u8 = 1;
const KIND_RECORD: u8 = 2;
const KIND_ACK: u8 = 3;
const KIND_HEARTBEAT: u8 = 4;
const KIND_FENCE: u8 = 5;

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends `frame`'s encoding to `out`.
pub fn encode(frame: &Frame, out: &mut Vec<u8>) {
    let at = out.len();
    put_u32(out, 0); // length backpatched below
    match frame {
        Frame::Subscribe { shard, from_seq } => {
            out.push(KIND_SUBSCRIBE);
            put_u32(out, *shard);
            put_u64(out, *from_seq);
        }
        Frame::Record { shard, epoch, first_seq, last_seq, committed_at, trace, span, payload } => {
            out.push(KIND_RECORD);
            put_u32(out, *shard);
            put_u64(out, *epoch);
            put_u64(out, *first_seq);
            put_u64(out, *last_seq);
            put_u64(out, *committed_at);
            put_u64(out, *trace);
            put_u64(out, *span);
            put_u32(out, payload.len() as u32);
            out.extend_from_slice(payload);
        }
        Frame::Ack { shard, last_seq } => {
            out.push(KIND_ACK);
            put_u32(out, *shard);
            put_u64(out, *last_seq);
        }
        Frame::Heartbeat { epoch, leader_now, shard_seqs } => {
            out.push(KIND_HEARTBEAT);
            put_u64(out, *epoch);
            put_u64(out, *leader_now);
            put_u32(out, shard_seqs.len() as u32);
            for s in shard_seqs {
                put_u64(out, *s);
            }
        }
        Frame::Fence { epoch } => {
            out.push(KIND_FENCE);
            put_u64(out, *epoch);
        }
    }
    let len = (out.len() - at - 4) as u32;
    out[at..at + 4].copy_from_slice(&len.to_le_bytes());
}

/// A strict little-endian cursor over one frame body.
struct Body<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Body<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self.at.checked_add(n).filter(|&e| e <= self.bytes.len());
        let Some(end) = end else {
            return Err(Error::Replication("truncated replication frame body".into()));
        };
        let s = &self.bytes[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn done(&self) -> Result<()> {
        if self.at != self.bytes.len() {
            return Err(Error::Replication("trailing bytes in replication frame".into()));
        }
        Ok(())
    }
}

fn decode_body(kind: u8, body: &[u8]) -> Result<Frame> {
    let mut b = Body { bytes: body, at: 0 };
    let frame = match kind {
        KIND_SUBSCRIBE => Frame::Subscribe { shard: b.u32()?, from_seq: b.u64()? },
        KIND_RECORD => {
            let shard = b.u32()?;
            let epoch = b.u64()?;
            let first_seq = b.u64()?;
            let last_seq = b.u64()?;
            let committed_at = b.u64()?;
            let trace = b.u64()?;
            let span = b.u64()?;
            let n = b.u32()? as usize;
            let payload = b.take(n)?.to_vec();
            Frame::Record { shard, epoch, first_seq, last_seq, committed_at, trace, span, payload }
        }
        KIND_ACK => Frame::Ack { shard: b.u32()?, last_seq: b.u64()? },
        KIND_HEARTBEAT => {
            let epoch = b.u64()?;
            let leader_now = b.u64()?;
            let n = b.u32()? as usize;
            let mut shard_seqs = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                shard_seqs.push(b.u64()?);
            }
            Frame::Heartbeat { epoch, leader_now, shard_seqs }
        }
        KIND_FENCE => Frame::Fence { epoch: b.u64()? },
        other => {
            return Err(Error::Replication(format!("unknown replication frame kind {other}")));
        }
    };
    b.done()?;
    Ok(frame)
}

/// Incremental frame parser: [`feed`](FrameReader::feed) bytes as they
/// arrive, [`next_frame`](FrameReader::next_frame) complete frames as they become
/// available. Partial frames are buffered across feeds.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
    at: usize,
}

/// The largest frame a peer may send (guards against a corrupt length
/// prefix allocating unbounded memory). Generous next to the store's
/// default 1 MiB group budget.
pub const MAX_FRAME: usize = 64 << 20;

impl FrameReader {
    /// An empty reader.
    pub fn new() -> FrameReader {
        FrameReader::default()
    }

    /// Buffers newly received bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        // Compact lazily so a long-lived subscription doesn't grow without
        // bound while staying O(1) amortized.
        if self.at > 0 && self.at == self.buf.len() {
            self.buf.clear();
            self.at = 0;
        } else if self.at > 64 << 10 {
            self.buf.drain(..self.at);
            self.at = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Parses the next complete frame, `Ok(None)` when more bytes are
    /// needed.
    ///
    /// # Errors
    ///
    /// [`noblsm::Error::Replication`] on a malformed frame; the reader is
    /// then poisoned-by-construction (the buffer no longer aligns with a
    /// frame boundary) and the connection should be dropped.
    pub fn next_frame(&mut self) -> Result<Option<Frame>> {
        let avail = self.buf.len() - self.at;
        if avail < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(self.buf[self.at..self.at + 4].try_into().expect("4 bytes"))
            as usize;
        if len == 0 || len > MAX_FRAME {
            return Err(Error::Replication(format!("invalid replication frame length {len}")));
        }
        if avail < 4 + len {
            return Ok(None);
        }
        let kind = self.buf[self.at + 4];
        let body = &self.buf[self.at + 5..self.at + 4 + len];
        let frame = decode_body(kind, body)?;
        self.at += 4 + len;
        Ok(Some(frame))
    }

    /// Bytes buffered but not yet consumed as frames.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Frame> {
        vec![
            Frame::Subscribe { shard: 3, from_seq: 42 },
            Frame::Record {
                shard: 1,
                epoch: 2,
                first_seq: 10,
                last_seq: 12,
                committed_at: 9_999,
                trace: 77,
                span: 81,
                payload: b"abcdef".to_vec(),
            },
            Frame::Ack { shard: 0, last_seq: 12 },
            Frame::Heartbeat { epoch: 2, leader_now: 10_000, shard_seqs: vec![12, 7] },
            Frame::Fence { epoch: 3 },
        ]
    }

    #[test]
    fn frames_round_trip() {
        let mut wire = Vec::new();
        for f in &samples() {
            encode(f, &mut wire);
        }
        let mut r = FrameReader::new();
        r.feed(&wire);
        let mut out = Vec::new();
        while let Some(f) = r.next_frame().unwrap() {
            out.push(f);
        }
        assert_eq!(out, samples());
        assert_eq!(r.buffered(), 0);
    }

    #[test]
    fn split_delivery_reassembles() {
        let mut wire = Vec::new();
        for f in &samples() {
            encode(f, &mut wire);
        }
        // Feed one byte at a time — the worst TCP fragmentation possible.
        let mut r = FrameReader::new();
        let mut out = Vec::new();
        for b in &wire {
            r.feed(std::slice::from_ref(b));
            while let Some(f) = r.next_frame().unwrap() {
                out.push(f);
            }
        }
        assert_eq!(out, samples());
    }

    #[test]
    fn unknown_kind_is_a_protocol_error() {
        let mut wire = Vec::new();
        encode(&Frame::Fence { epoch: 1 }, &mut wire);
        wire[4] = 99; // corrupt the kind byte
        let mut r = FrameReader::new();
        r.feed(&wire);
        let err = r.next_frame().unwrap_err();
        assert!(matches!(err, Error::Replication(_)), "{err}");
    }

    #[test]
    fn truncated_body_is_a_protocol_error() {
        let mut wire = Vec::new();
        encode(&Frame::Ack { shard: 0, last_seq: 7 }, &mut wire);
        // Shrink the body but fix up the length prefix so the frame
        // "completes" with too few bytes for its kind.
        let short = (wire.len() - 4 - 2) as u32;
        wire.truncate(wire.len() - 2);
        wire[..4].copy_from_slice(&short.to_le_bytes());
        let mut r = FrameReader::new();
        r.feed(&wire);
        assert!(r.next_frame().is_err());
    }

    #[test]
    fn zero_length_prefix_is_rejected() {
        let mut r = FrameReader::new();
        r.feed(&0u32.to_le_bytes());
        assert!(r.next_frame().is_err());
    }
}
