//! The replication follower: applies shipped records to its own store,
//! serves bounded-staleness reads, and can be promoted to leader.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use nob_metrics::{MetricKind, MetricsHub};
use nob_sim::Nanos;
use nob_store::{Store, StoreOptions};
use nob_trace::{EventClass, TraceSink};
use noblsm::{decode_batch, Error, ReadOptions, Result, ValueType, WriteBatch, WriteOptions};

use crate::changelog::{ChangeLog, LogRecord};
use crate::leader::Leader;

/// A follower owns a complete store (same shard count as its leader) and
/// applies the leader's shipped records in sequence order. Because the
/// records are the leader's exact WAL batch payloads and both engines
/// assign sequence numbers contiguously, the follower's per-shard
/// `last_sequence` converges on the leader's — the apply path *checks*
/// this on every record rather than trusting it.
///
/// The follower also retains every applied record in its own
/// [`ChangeLog`], so a changefeed subscriber can resume against a
/// promoted follower exactly where it left off with the old leader.
pub struct Follower {
    store: Store,
    log: ChangeLog,
    epoch: u64,
    /// The leader-clock instant of the last applied record, per shard.
    freshness: Vec<Nanos>,
    /// The leader clock's instant as of the last heartbeat.
    leader_now: Nanos,
    /// Records applied from the leader's stream (shared with the metrics
    /// counter).
    applied_total: Arc<AtomicU64>,
    /// Payload bytes applied (shared with the metrics counter).
    applied_bytes: Arc<AtomicU64>,
    trace: Option<TraceSink>,
}

impl Follower {
    /// Wraps `store` as a follower of an epoch-`epoch` leader.
    pub fn new(store: Store, epoch: u64) -> Follower {
        let shards = store.shards();
        Follower {
            store,
            log: ChangeLog::new(shards),
            epoch,
            freshness: vec![Nanos::ZERO; shards],
            leader_now: Nanos::ZERO,
            applied_total: Arc::new(AtomicU64::new(0)),
            applied_bytes: Arc::new(AtomicU64::new(0)),
            trace: None,
        }
    }

    /// Opens a fresh store and wraps it as a follower.
    ///
    /// # Errors
    ///
    /// As for [`Store::open`].
    pub fn open(opts: StoreOptions, epoch: u64) -> Result<Follower> {
        Ok(Follower::new(Store::open(opts)?, epoch))
    }

    /// The epoch this follower believes is current.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The wrapped store.
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// Mutable access to the wrapped store (ticking, crash injection).
    pub fn store_mut(&mut self) -> &mut Store {
        &mut self.store
    }

    /// The follower's retained copy of the change stream.
    pub fn log(&self) -> &ChangeLog {
        &self.log
    }

    /// The next sequence this follower needs on `shard` — what it
    /// subscribes from.
    pub fn next_seq(&self, shard: usize) -> u64 {
        self.store.shard_db(shard).last_sequence() + 1
    }

    /// Last applied sequence per shard, in shard order.
    pub fn shard_seqs(&self) -> Vec<u64> {
        self.store.shard_seqs()
    }

    /// Records applied from the leader's stream (the
    /// `repl.applied_records` counter).
    pub fn applied_records(&self) -> u64 {
        self.applied_total.load(Ordering::Relaxed)
    }

    /// Registers the follower's apply-throughput counters on `hub`
    /// (under its scope): `repl.applied_records` and
    /// `repl.applied_bytes`.
    pub fn install_metrics(&self, hub: &MetricsHub) {
        let applied = Arc::clone(&self.applied_total);
        hub.register(
            MetricKind::Counter,
            "repl.applied_records",
            "WAL records applied from the leader's stream",
            move |_| applied.load(Ordering::Relaxed) as f64,
        );
        let bytes = Arc::clone(&self.applied_bytes);
        hub.register(
            MetricKind::Counter,
            "repl.applied_bytes",
            "WAL payload bytes applied from the leader's stream",
            move |_| bytes.load(Ordering::Relaxed) as f64,
        );
    }

    /// Applies one shipped record. Returns `Ok(false)` when the record is
    /// a duplicate of something already applied (harmless redelivery
    /// after a reconnect), `Ok(true)` when it advanced the shard.
    ///
    /// # Errors
    ///
    /// [`noblsm::Error::Replication`] when the record carries a stale
    /// epoch, leaves a sequence gap, fails to decode, or the engine's
    /// sequence assignment diverges from the record's tags; engine write
    /// errors pass through.
    pub fn apply(&mut self, rec: &LogRecord) -> Result<bool> {
        if rec.epoch < self.epoch {
            return Err(Error::Replication(format!(
                "record from stale epoch {} (follower is at epoch {})",
                rec.epoch, self.epoch
            )));
        }
        // A higher epoch means a new leader was promoted upstream; the
        // follower adopts it and keeps applying.
        self.epoch = rec.epoch;
        if rec.shard >= self.store.shards() {
            return Err(Error::Replication(format!(
                "record for shard {} but the follower has {} shards",
                rec.shard,
                self.store.shards()
            )));
        }
        let applied = self.store.shard_db(rec.shard).last_sequence();
        if rec.last_seq <= applied {
            return Ok(false);
        }
        if rec.first_seq != applied + 1 {
            return Err(Error::Replication(format!(
                "sequence gap on shard {}: applied through {applied}, record starts at {}",
                rec.shard, rec.first_seq
            )));
        }
        let decoded = decode_batch(&rec.payload)
            .map_err(|e| Error::Replication(format!("undecodable shipped payload: {e}")))?;
        if decoded.seq != rec.first_seq {
            return Err(Error::Replication(format!(
                "payload seq {} disagrees with record tag {}",
                decoded.seq, rec.first_seq
            )));
        }
        let mut batch = WriteBatch::new();
        for (vt, k, v) in &decoded.entries {
            match vt {
                ValueType::Deletion => batch.delete(k),
                _ => batch.put(k, v),
            }
        }
        let start = self.store.clock().now();
        // The apply span parents under the record's ship span (the wire
        // carries its identity), so the engine write it provokes — and
        // its journal/FLUSH children — extend the originating request's
        // tree across the replica boundary.
        if let Some(sink) = &self.trace {
            sink.begin_span_with_parent(Some(rec.ctx));
        }
        let wrote = self.store.shard_db_mut(rec.shard).write(&WriteOptions::default(), batch);
        let end = self.store.clock().now();
        if let Some(sink) = &self.trace {
            match &wrote {
                Ok(_) => {
                    sink.end_span(EventClass::ReplApply, start, end, rec.payload.len() as u64);
                }
                Err(_) => {
                    sink.pop_ctx();
                }
            }
        }
        wrote?;
        let landed = self.store.shard_db(rec.shard).last_sequence();
        if landed != rec.last_seq {
            return Err(Error::Replication(format!(
                "divergence on shard {}: engine landed at seq {landed}, record ends at {}",
                rec.shard, rec.last_seq
            )));
        }
        self.log.append(rec.clone())?;
        self.freshness[rec.shard] = rec.committed_at;
        self.leader_now = self.leader_now.max(rec.committed_at);
        self.applied_total.fetch_add(1, Ordering::Relaxed);
        self.applied_bytes.fetch_add(rec.payload.len() as u64, Ordering::Relaxed);
        Ok(true)
    }

    /// Observes a leader heartbeat: adopts a higher epoch and advances
    /// the staleness clock.
    ///
    /// # Errors
    ///
    /// [`noblsm::Error::Replication`] when the heartbeat carries a stale
    /// epoch — a fenced ex-leader is still talking and must be ignored.
    pub fn observe_heartbeat(&mut self, epoch: u64, leader_now: Nanos) -> Result<()> {
        if epoch < self.epoch {
            return Err(Error::Replication(format!(
                "heartbeat from stale epoch {epoch} (follower is at epoch {})",
                self.epoch
            )));
        }
        self.epoch = epoch;
        self.leader_now = self.leader_now.max(leader_now);
        Ok(())
    }

    /// How far behind the leader clock `shard`'s applied state is: the
    /// last heartbeat instant minus the commit instant of the last
    /// applied record. Zero until the first heartbeat arrives.
    pub fn staleness(&self, shard: usize) -> Nanos {
        self.leader_now.saturating_sub(self.freshness[shard])
    }

    /// Follower read: a point lookup against the follower's own store,
    /// honouring [`ReadOptions::max_staleness`].
    ///
    /// # Errors
    ///
    /// [`noblsm::Error::Replication`] when the owning shard's staleness
    /// exceeds the requested bound; store/engine errors pass through.
    pub fn get(&mut self, ropts: &ReadOptions<'_>, key: &[u8]) -> Result<Option<Vec<u8>>> {
        if let Some(bound) = ropts.max_staleness {
            let shard = self.store.shard_of(key);
            let lag = self.staleness(shard);
            if lag > bound {
                return Err(Error::Replication(format!(
                    "shard {shard} is {lag} behind the leader (bound {bound})"
                )));
            }
        }
        self.store.get(ropts, key)
    }

    /// Promotes this follower to leader at `epoch() + 1`, carrying its
    /// store and retained change log. The caller is responsible for
    /// delivering the fence (the new epoch) to the old leader — until
    /// then, safety rests on the old leader being dead.
    pub fn promote(self) -> Leader {
        let epoch = self.epoch + 1;
        let mut leader = Leader::with_log(self.store, self.log, epoch);
        if let Some(sink) = self.trace {
            leader.set_trace_sink(sink);
        }
        leader
    }

    /// Installs `sink` on the store stack and the follower's own
    /// `repl_apply` spans.
    pub fn set_trace_sink(&mut self, sink: TraceSink) {
        self.store.set_trace_sink(sink.clone());
        self.trace = Some(sink);
    }

    /// Removes the trace sink everywhere.
    pub fn clear_trace_sink(&mut self) {
        self.store.clear_trace_sink();
        self.trace = None;
    }
}
