//! `std::net` TCP front-end over [`ReplCore`].
//!
//! Same thread layout as the serving crate's `TcpServer`: an accept
//! thread spawns per-connection reader/writer threads, and a single
//! engine thread owns the core — so the replication logic on the wire is
//! exactly the single-threaded logic the loopback transport exercises
//! deterministically. The engine additionally wakes on a timer so
//! heartbeats and freshly committed records flow even while the
//! subscribers are silent.

use std::collections::HashMap;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use noblsm::{Error, Result};

use crate::core::{ReplConnId, ReplCore};

/// Reader poll interval (bounds shutdown latency) and the engine's
/// heartbeat/pump cadence.
const TICK: Duration = Duration::from_millis(25);

enum Msg {
    Open(u64, mpsc::Sender<Vec<u8>>),
    Data(u64, Vec<u8>),
    Closed(u64),
}

/// A running replication TCP endpoint; dropping it without
/// [`shutdown`](ReplTcpServer::shutdown) aborts non-gracefully.
pub struct ReplTcpServer {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    engine: Option<JoinHandle<Result<ReplCore>>>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ReplTcpServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and serves `core`.
    ///
    /// # Errors
    ///
    /// Bind failures as [`noblsm::Error::Io`].
    pub fn serve(addr: &str, core: ReplCore) -> Result<ReplTcpServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let conn_threads = Arc::new(Mutex::new(Vec::new()));
        let (tx, rx) = mpsc::channel::<Msg>();
        let engine = std::thread::spawn(move || engine_loop(core, rx));
        let accept = {
            let stop = Arc::clone(&stop);
            let conn_threads = Arc::clone(&conn_threads);
            std::thread::spawn(move || accept_loop(listener, tx, stop, conn_threads))
        };
        Ok(ReplTcpServer {
            addr: local,
            stop,
            accept: Some(accept),
            engine: Some(engine),
            conn_threads,
        })
    }

    /// The bound address (use port 0 to discover the ephemeral port).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Graceful shutdown: stop accepting, push what is already due,
    /// close every connection, join all threads, return the core.
    ///
    /// # Errors
    ///
    /// Propagates the first engine-side failure, if any.
    pub fn shutdown(mut self) -> Result<ReplCore> {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let engine = self.engine.take().expect("shutdown runs once");
        let core =
            engine.join().map_err(|_| Error::Usage("replication engine panicked".into()))??;
        let handles = std::mem::take(&mut *self.conn_threads.lock().expect("no poisoned lock"));
        for h in handles {
            let _ = h.join();
        }
        Ok(core)
    }
}

fn accept_loop(
    listener: TcpListener,
    tx: mpsc::Sender<Msg>,
    stop: Arc<AtomicBool>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    let mut next_token: u64 = 0;
    while !stop.load(Ordering::SeqCst) {
        let Ok((stream, _)) = listener.accept() else { continue };
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let token = next_token;
        next_token += 1;
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(TICK));
        let Ok(write_half) = stream.try_clone() else { continue };
        let (out_tx, out_rx) = mpsc::channel::<Vec<u8>>();
        if tx.send(Msg::Open(token, out_tx)).is_err() {
            break;
        }
        let reader = {
            let tx = tx.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || reader_loop(token, stream, tx, stop))
        };
        let writer = std::thread::spawn(move || writer_loop(write_half, out_rx));
        let mut guard = conn_threads.lock().expect("no poisoned lock");
        guard.push(reader);
        guard.push(writer);
    }
}

fn reader_loop(token: u64, mut stream: TcpStream, tx: mpsc::Sender<Msg>, stop: Arc<AtomicBool>) {
    use std::io::Read;
    let mut buf = vec![0u8; 64 << 10];
    loop {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                if tx.send(Msg::Data(token, buf[..n].to_vec())).is_err() {
                    return;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        }
    }
    let _ = tx.send(Msg::Closed(token));
}

fn writer_loop(mut stream: TcpStream, rx: mpsc::Receiver<Vec<u8>>) {
    use std::io::Write;
    while let Ok(chunk) = rx.recv() {
        if stream.write_all(&chunk).is_err() {
            return;
        }
    }
    let _ = stream.shutdown(std::net::Shutdown::Write);
}

struct Registered {
    conn: ReplConnId,
    out: mpsc::Sender<Vec<u8>>,
    closed: bool,
}

fn engine_loop(mut core: ReplCore, rx: mpsc::Receiver<Msg>) -> Result<ReplCore> {
    let mut conns: HashMap<u64, Registered> = HashMap::new();
    'serve: loop {
        // Wake on input or on the tick, so records committed by the
        // embedding application and heartbeats ship without traffic.
        let first = match rx.recv_timeout(TICK) {
            Ok(m) => Some(m),
            Err(mpsc::RecvTimeoutError::Timeout) => None,
            Err(mpsc::RecvTimeoutError::Disconnected) => break 'serve,
        };
        let mut inbox: Vec<Msg> = first.into_iter().collect();
        while let Ok(m) = rx.try_recv() {
            inbox.push(m);
        }
        for msg in inbox {
            match msg {
                Msg::Open(token, out) => {
                    let conn = core.connect();
                    conns.insert(token, Registered { conn, out, closed: false });
                }
                Msg::Data(token, bytes) => {
                    if let Some(reg) = conns.get(&token) {
                        // A poisoned peer is dropped, not fatal to the
                        // endpoint.
                        let _ = core.feed(reg.conn, &bytes);
                    }
                }
                Msg::Closed(token) => {
                    if let Some(reg) = conns.get_mut(&token) {
                        reg.closed = true;
                    }
                }
            }
        }
        pump_outputs(&mut core, &mut conns);
    }
    pump_outputs(&mut core, &mut conns);
    for (_, reg) in conns.drain() {
        core.disconnect(reg.conn);
    }
    Ok(core)
}

fn pump_outputs(core: &mut ReplCore, conns: &mut HashMap<u64, Registered>) {
    let mut reap = Vec::new();
    for (&token, reg) in conns.iter_mut() {
        let pumped = core.pump(reg.conn);
        let out = core.take_output(reg.conn);
        if !out.is_empty() && reg.out.send(out).is_err() {
            reg.closed = true;
        }
        if reg.closed || core.is_poisoned(reg.conn) || pumped.is_err() {
            reap.push(token);
        }
    }
    for token in reap {
        if let Some(reg) = conns.remove(&token) {
            core.disconnect(reg.conn);
        }
    }
}

#[cfg(test)]
mod tests {
    use nob_server::TcpTransport;
    use nob_store::{Store, StoreOptions};
    use noblsm::{ReadOptions, WriteBatch, WriteOptions};

    use crate::core::ReplCore;
    use crate::follower::Follower;
    use crate::leader::Leader;
    use crate::subscriber::FollowerLink;

    use super::*;

    #[test]
    fn tcp_follower_catches_up_and_serves_reads() {
        let opts = StoreOptions { shards: 2, ..StoreOptions::default() };
        let mut leader = Leader::new(Store::open(opts.clone()).unwrap(), 1);
        for i in 0..20u64 {
            let mut b = WriteBatch::new();
            b.put(format!("key{i:02}").as_bytes(), format!("val{i}").as_bytes());
            leader.write(&WriteOptions::default(), b).unwrap();
        }
        let server = ReplTcpServer::serve("127.0.0.1:0", ReplCore::new(leader)).unwrap();
        let addr = server.local_addr().to_string();

        let follower = Follower::new(Store::open(opts).unwrap(), 1);
        let transport = TcpTransport::connect(&addr).unwrap();
        let mut link = FollowerLink::new(transport, follower);
        link.subscribe().unwrap();
        // Real sockets deliver asynchronously: poll until caught up (the
        // records exist already, so this terminates quickly).
        let mut applied = 0;
        for _ in 0..400 {
            applied += link.poll().unwrap();
            if applied >= 20 && link.follower().shard_seqs().iter().sum::<u64>() == 20 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(link.follower().shard_seqs().iter().sum::<u64>(), 20);
        for i in 0..20u64 {
            let got = link.get(&ReadOptions::default(), format!("key{i:02}").as_bytes()).unwrap();
            assert_eq!(got.as_deref(), Some(format!("val{i}").as_bytes()), "key{i:02}");
        }
        drop(link);
        let core = server.shutdown().unwrap();
        assert_eq!(core.leader().acked_seqs().iter().sum::<u64>(), 20, "acks reached the leader");
    }
}
