//! The leader-side replication endpoint: connection state, frame
//! dispatch, and the deterministic in-process loopback transport.
//!
//! [`ReplCore`] mirrors the serving crate's `ServerCore` shape — `feed`
//! request bytes in, `take_output` reply bytes out, no I/O of its own —
//! so the same core serves both the loopback transport (deterministic
//! tests, virtual time) and the TCP front-end (real runs), byte for
//! byte.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use nob_server::Transport;
use noblsm::{Error, Result};

use crate::leader::Leader;
use crate::wire::{encode, Frame, FrameReader};

/// Server-side handle for one replication connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ReplConnId(u64);

struct Conn {
    reader: FrameReader,
    outbox: Vec<u8>,
    /// Per-shard subscription cursor: the next sequence to stream, `None`
    /// while not subscribed to that shard.
    cursors: Vec<Option<u64>>,
    /// A protocol error was observed; the connection only drains.
    poisoned: bool,
}

/// The leader-side endpoint: owns the [`Leader`] and serves any number of
/// subscriber connections over the frame protocol.
pub struct ReplCore {
    leader: Leader,
    conns: BTreeMap<u64, Conn>,
    next_conn: u64,
}

impl ReplCore {
    /// Wraps `leader` for serving.
    pub fn new(leader: Leader) -> ReplCore {
        ReplCore { leader, conns: BTreeMap::new(), next_conn: 0 }
    }

    /// The wrapped leader.
    pub fn leader(&self) -> &Leader {
        &self.leader
    }

    /// Mutable access to the wrapped leader (writes, trace/metrics
    /// wiring, crash injection).
    pub fn leader_mut(&mut self) -> &mut Leader {
        &mut self.leader
    }

    /// Consumes the core, returning the leader (failover hand-off,
    /// end-of-test inspection).
    pub fn into_leader(self) -> Leader {
        self.leader
    }

    /// Registers a new subscriber connection.
    pub fn connect(&mut self) -> ReplConnId {
        let id = self.next_conn;
        self.next_conn += 1;
        let shards = self.leader.store().shards();
        self.conns.insert(
            id,
            Conn {
                reader: FrameReader::new(),
                outbox: Vec::new(),
                cursors: vec![None; shards],
                poisoned: false,
            },
        );
        ReplConnId(id)
    }

    /// Drops `conn`'s state. Safe to call twice.
    pub fn disconnect(&mut self, conn: ReplConnId) {
        self.conns.remove(&conn.0);
    }

    /// Open connections.
    pub fn connections(&self) -> usize {
        self.conns.len()
    }

    /// Whether `conn` hit a protocol error.
    pub fn is_poisoned(&self, conn: ReplConnId) -> bool {
        self.conns.get(&conn.0).is_some_and(|c| c.poisoned)
    }

    /// Feeds raw bytes from `conn`'s peer: complete frames are decoded
    /// and dispatched (SUBSCRIBE moves the cursor, ACK records progress,
    /// FENCE fences the leader).
    ///
    /// # Errors
    ///
    /// Frame decode errors poison the connection and surface as
    /// [`noblsm::Error::Replication`].
    pub fn feed(&mut self, conn: ReplConnId, bytes: &[u8]) -> Result<()> {
        let Some(c) = self.conns.get_mut(&conn.0) else {
            return Err(Error::Usage("feed on an unknown replication connection".into()));
        };
        if c.poisoned {
            return Ok(()); // drain-only: ignore further input
        }
        c.reader.feed(bytes);
        loop {
            let frame =
                match self.conns.get_mut(&conn.0).expect("checked above").reader.next_frame() {
                    Ok(Some(f)) => f,
                    Ok(None) => return Ok(()),
                    Err(e) => {
                        self.conns.get_mut(&conn.0).expect("checked above").poisoned = true;
                        return Err(e);
                    }
                };
            self.dispatch(conn, frame)?;
        }
    }

    fn dispatch(&mut self, conn: ReplConnId, frame: Frame) -> Result<()> {
        match frame {
            Frame::Subscribe { shard, from_seq } => {
                let shard = shard as usize;
                let c = self.conns.get_mut(&conn.0).expect("dispatch on a live conn");
                if shard >= c.cursors.len() {
                    c.poisoned = true;
                    return Err(Error::Replication(format!(
                        "subscribe to shard {shard} but the leader has {} shards",
                        c.cursors.len()
                    )));
                }
                c.cursors[shard] = Some(from_seq.max(1));
                Ok(())
            }
            Frame::Ack { shard, last_seq } => {
                self.leader.ack(shard as usize, last_seq);
                Ok(())
            }
            Frame::Fence { epoch } => {
                self.leader.fence(epoch);
                Ok(())
            }
            Frame::Record { .. } | Frame::Heartbeat { .. } => {
                let c = self.conns.get_mut(&conn.0).expect("dispatch on a live conn");
                c.poisoned = true;
                Err(Error::Replication("client sent a server-side frame".into()))
            }
        }
    }

    /// Streams what `conn` is due — new records past each subscribed
    /// cursor, then one heartbeat — into its outbox. Call after feeding
    /// input or committing writes, then [`take_output`](ReplCore::take_output).
    ///
    /// # Errors
    ///
    /// A cursor below the log's retained base surfaces as
    /// [`noblsm::Error::Replication`] (the subscriber must re-seed).
    pub fn pump(&mut self, conn: ReplConnId) -> Result<()> {
        // Pick up anything the leader committed since the last pump.
        self.leader.absorb()?;
        let Some(c) = self.conns.get_mut(&conn.0) else {
            return Err(Error::Usage("pump on an unknown replication connection".into()));
        };
        if c.poisoned {
            return Ok(());
        }
        let epoch = self.leader.epoch();
        for shard in 0..c.cursors.len() {
            let Some(cursor) = c.cursors[shard] else { continue };
            let records = self.leader.log().records_from(shard, cursor)?;
            for rec in records {
                encode(
                    &Frame::Record {
                        shard: shard as u32,
                        epoch,
                        first_seq: rec.first_seq,
                        last_seq: rec.last_seq,
                        committed_at: rec.committed_at.as_nanos(),
                        trace: rec.ctx.trace,
                        span: rec.ctx.span,
                        payload: rec.payload.clone(),
                    },
                    &mut c.outbox,
                );
            }
            if let Some(last) = records.last() {
                c.cursors[shard] = Some(last.last_seq + 1);
            }
        }
        let (epoch, leader_now, shard_seqs) = self.leader.heartbeat();
        encode(
            &Frame::Heartbeat { epoch, leader_now: leader_now.as_nanos(), shard_seqs },
            &mut c.outbox,
        );
        Ok(())
    }

    /// Takes `conn`'s accumulated output bytes (empty if nothing is due).
    pub fn take_output(&mut self, conn: ReplConnId) -> Vec<u8> {
        self.conns.get_mut(&conn.0).map(|c| std::mem::take(&mut c.outbox)).unwrap_or_default()
    }
}

/// Shared handle to an in-process [`ReplCore`] that loopback subscribers
/// multiplex onto.
pub type SharedRepl = Rc<RefCell<ReplCore>>;

/// Wraps a core for loopback use.
pub fn shared(core: ReplCore) -> SharedRepl {
    Rc::new(RefCell::new(core))
}

/// In-process replication transport on virtual time: `send` feeds the
/// core, `recv` pumps it and takes the connection's output — the
/// replication twin of the serving crate's `LoopbackTransport`.
pub struct ReplLoopback {
    core: SharedRepl,
    conn: ReplConnId,
}

impl ReplLoopback {
    /// Opens a new subscriber connection on `core`.
    pub fn connect(core: &SharedRepl) -> ReplLoopback {
        let conn = core.borrow_mut().connect();
        ReplLoopback { core: Rc::clone(core), conn }
    }

    /// The server-side connection handle.
    pub fn conn_id(&self) -> ReplConnId {
        self.conn
    }
}

impl Transport for ReplLoopback {
    fn send(&mut self, bytes: &[u8]) -> Result<()> {
        self.core.borrow_mut().feed(self.conn, bytes)
    }

    fn recv(&mut self, out: &mut Vec<u8>) -> Result<usize> {
        let mut core = self.core.borrow_mut();
        core.pump(self.conn)?;
        let chunk = core.take_output(self.conn);
        out.extend_from_slice(&chunk);
        Ok(chunk.len())
    }
}

impl Drop for ReplLoopback {
    fn drop(&mut self) {
        self.core.borrow_mut().disconnect(self.conn);
    }
}
