//! `nob-store` — a sharded front-end over N independent [`Db`] engines.
//!
//! The store partitions the keyspace by a stable hash of the key across
//! `N` shards. Each shard owns a complete, independent stack — its own
//! simulated SSD and Ext4 filesystem under its own engine — but every
//! shard is opened on **one** [`SharedClock`], so the whole deployment
//! advances on a single virtual timeline and every run is deterministic.
//!
//! # Group commit
//!
//! Writes go through a LevelDB-style group-commit queue. Logical writers
//! [`enqueue`](Store::enqueue) their [`WriteBatch`]es and receive a
//! [`Ticket`]; nothing touches the engine yet. The scheduler
//! ([`pump`](Store::pump) / [`drain`](Store::drain)) visits shards in
//! deterministic round-robin order. On each visit the batch at the head
//! of the shard's queue becomes the *leader*: it coalesces the batches
//! queued behind it — up to a byte and a count budget — into one merged
//! batch, issues a **single** engine write (one WAL record, one journal
//! interaction), and every coalesced *follower* inherits the leader's
//! durability outcome. This is where the throughput win comes from: the
//! per-write CPU charge and the WAL append/sync are paid once per group
//! instead of once per writer, so `Sync`-mode throughput rises
//! monotonically with the number of writers sharing a shard.
//!
//! A synced follower never rides a buffered leader (that would silently
//! downgrade its durability); buffered followers ride a synced leader for
//! free.
//!
//! Because the merged group is a single atomic [`WriteBatch`], a crash
//! mid-group-commit can never surface a follower's write without its
//! leader's: either the whole group's WAL record survives or none of it
//! does.
//!
//! # Example
//!
//! ```
//! use nob_store::{Store, StoreOptions};
//! use noblsm::{ReadOptions, WriteBatch, WriteOptions};
//!
//! # fn main() -> noblsm::Result<()> {
//! let mut store = Store::open(StoreOptions { shards: 2, ..StoreOptions::default() })?;
//! let mut batch = WriteBatch::new();
//! batch.put(b"k1", b"v1");
//! batch.put(b"k2", b"v2");
//! store.write(&WriteOptions::default(), batch)?;
//! assert_eq!(store.get(&ReadOptions::default(), b"k1")?.as_deref(), Some(&b"v1"[..]));
//! # Ok(())
//! # }
//! ```

use std::collections::{BTreeMap, VecDeque};

use nob_ext4::{Ext4Config, Ext4Fs};
use nob_metrics::MetricsHub;
use nob_sim::{Nanos, SharedClock};
use nob_trace::{EventClass, TraceCtx, TraceSink};
use noblsm::{
    encode_batch, Db, Options, ReadOptions, ScanCollector, ScanOptions, ScanResult, Snapshot,
    ValueType, WriteBatch, WriteOptions,
};

pub use noblsm::{Error, Result};

/// Configuration for [`Store::open`].
#[derive(Debug, Clone)]
pub struct StoreOptions {
    /// Number of shards (≥ 1). Each shard gets its own SSD + Ext4 stack.
    pub shards: usize,
    /// Byte budget per coalesced group: a follower joins only while the
    /// merged payload stays within this budget. The leader always
    /// commits, even if it alone exceeds the budget.
    pub group_budget_bytes: u64,
    /// Count budget per coalesced group (leader included, ≥ 1).
    pub group_budget_count: usize,
    /// Filesystem/device configuration, cloned per shard.
    pub fs: Ext4Config,
    /// Engine options, cloned per shard.
    pub db: Options,
    /// Per-shard compaction lane counts. `None` gives every shard
    /// `db.compaction_lanes`; `Some(v)` must hold one non-zero entry per
    /// shard (a hot shard can run more lanes than a cold one).
    pub shard_lanes: Option<Vec<usize>>,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            shards: 4,
            group_budget_bytes: 1 << 20,
            group_budget_count: 32,
            fs: Ext4Config::default(),
            db: Options::default(),
            shard_lanes: None,
        }
    }
}

/// Handle for an enqueued write; redeem with [`Store::outcome`] after the
/// queue has been pumped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ticket(u64);

/// Aggregate group-commit counters, for benches asserting amortization.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Coalesced groups committed (engine writes issued).
    pub groups: u64,
    /// Writer batches retired (leaders + followers).
    pub batches: u64,
    /// Total merged payload bytes across all groups.
    pub merged_bytes: u64,
    /// Committed groups captured for WAL shipping (0 while shipping is
    /// disabled); equals `groups` committed since
    /// [`Store::enable_shipping`].
    pub shipped_records: u64,
}

/// One committed group captured for WAL shipping: the exact batch payload
/// the shard's engine logged, tagged with the contiguous sequence range
/// the engine assigned it. Records per shard form a gap-free chain —
/// `first_seq` of each record is the previous record's `last_seq + 1` —
/// which is the invariant replication consumers key on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShippedRecord {
    /// The shard the group committed on.
    pub shard: usize,
    /// Sequence of the group's first entry.
    pub first_seq: u64,
    /// Sequence of the group's last entry.
    pub last_seq: u64,
    /// The WAL batch payload (`noblsm::encode_batch` format, decodable
    /// with `noblsm::decode_batch`).
    pub payload: Vec<u8>,
    /// The group's durable instant on the deployment clock.
    pub committed_at: Nanos,
    /// Causal identity of the group-commit span that produced this
    /// record ([`TraceCtx::NONE`] when tracing is off). Replication
    /// layers parent their ship/apply/ack spans under it so a traced
    /// request's tree extends past durability.
    pub ctx: TraceCtx,
}

struct Pending {
    ticket: u64,
    wopts: WriteOptions,
    batch: WriteBatch,
    /// Causal context of the request that enqueued this part
    /// ([`TraceCtx::NONE`] for untraced writers).
    ctx: TraceCtx,
}

struct Shard {
    db: Db,
    queue: VecDeque<Pending>,
}

/// A sharded store: hash-of-key routing over N engines with a group-commit
/// queue per shard, all on one virtual clock. See the crate docs.
pub struct Store {
    clock: SharedClock,
    shards: Vec<Shard>,
    trace: Option<TraceSink>,
    budget_bytes: u64,
    budget_count: usize,
    next_ticket: u64,
    /// Remaining per-shard parts of each still-incomplete ticket.
    parts: BTreeMap<u64, usize>,
    /// Latest durable instant observed per ticket (final once the ticket
    /// leaves `parts`).
    outcomes: BTreeMap<u64, Nanos>,
    stats: StoreStats,
    /// When set, every committed group is also captured as a
    /// [`ShippedRecord`] for a replication leader to drain.
    shipping: bool,
    shipped: Vec<ShippedRecord>,
}

/// Stable 64-bit FNV-1a, the store's routing hash. Deterministic across
/// runs and platforms — part of the store's on-disk contract, since it
/// decides which shard directory holds a key.
fn fnv1a(key: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl Store {
    /// Opens (creating or recovering) `opts.shards` shard engines, each on
    /// a fresh filesystem stack, all on one shared clock.
    ///
    /// # Errors
    ///
    /// [`Error::Usage`] when `shards` or `group_budget_count` is zero;
    /// otherwise propagates engine open errors.
    pub fn open(opts: StoreOptions) -> Result<Store> {
        Store::open_with_clock(opts, SharedClock::new())
    }

    /// Like [`open`](Store::open) but on a caller-supplied clock, so two
    /// stores (a replication leader and its follower) can share one
    /// virtual timeline and stay deterministic as a pair.
    ///
    /// # Errors
    ///
    /// As for [`open`](Store::open).
    pub fn open_with_clock(opts: StoreOptions, clock: SharedClock) -> Result<Store> {
        if opts.shards == 0 {
            return Err(Error::Usage("store needs at least one shard".into()));
        }
        if opts.group_budget_count == 0 {
            return Err(Error::Usage("group_budget_count must be at least 1".into()));
        }
        if let Some(lanes) = &opts.shard_lanes {
            if lanes.len() != opts.shards {
                return Err(Error::Usage(
                    "shard_lanes must hold exactly one entry per shard".into(),
                ));
            }
            if lanes.contains(&0) {
                return Err(Error::Usage("every shard needs at least one compaction lane".into()));
            }
        }
        let mut shards = Vec::with_capacity(opts.shards);
        for i in 0..opts.shards {
            let fs = Ext4Fs::new(opts.fs.clone());
            let mut db_opts = opts.db.clone();
            if let Some(lanes) = &opts.shard_lanes {
                db_opts.compaction_lanes = lanes[i];
            }
            let db = Db::open_with_clock(fs, &format!("shard{i}"), db_opts, clock.clone())?;
            shards.push(Shard { db, queue: VecDeque::new() });
        }
        Ok(Store {
            clock,
            shards,
            trace: None,
            budget_bytes: opts.group_budget_bytes,
            budget_count: opts.group_budget_count,
            next_ticket: 0,
            parts: BTreeMap::new(),
            outcomes: BTreeMap::new(),
            stats: StoreStats::default(),
            shipping: false,
            shipped: Vec::new(),
        })
    }

    /// The shard index `key` routes to.
    pub fn shard_of(&self, key: &[u8]) -> usize {
        (fnv1a(key) % self.shards.len() as u64) as usize
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The store's (and every shard's) shared virtual clock.
    pub fn clock(&self) -> &SharedClock {
        &self.clock
    }

    /// Aggregate group-commit counters.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// Borrow shard `i`'s engine (stats, filesystem, crash injection).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn shard_db(&self, i: usize) -> &Db {
        &self.shards[i].db
    }

    /// Mutably borrow shard `i`'s engine.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn shard_db_mut(&mut self, i: usize) -> &mut Db {
        &mut self.shards[i].db
    }

    /// Per-shard compaction lane counts, in shard order.
    pub fn compaction_lanes(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.db.compaction_lanes()).collect()
    }

    /// Reconfigures every shard to `n` compaction lanes at runtime
    /// (in-flight jobs still complete; see [`Db::set_compaction_lanes`]).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn set_compaction_lanes(&mut self, n: usize) {
        for shard in &mut self.shards {
            shard.db.set_compaction_lanes(n);
        }
    }

    /// Batches still queued across all shards.
    pub fn pending(&self) -> usize {
        self.shards.iter().map(|s| s.queue.len()).sum()
    }

    /// The last committed sequence number of every shard, in shard order
    /// (each shard's engine numbers its entries independently). A
    /// replication subscriber resumes shard `i` at `shard_seqs()[i] + 1`.
    pub fn shard_seqs(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.db.last_sequence()).collect()
    }

    /// Starts capturing every committed group as a [`ShippedRecord`].
    /// Groups committed before this call are not retroactively captured —
    /// a leader enables shipping at open, before accepting writes.
    pub fn enable_shipping(&mut self) {
        self.shipping = true;
    }

    /// Whether group shipping capture is on.
    pub fn shipping_enabled(&self) -> bool {
        self.shipping
    }

    /// Drains the shipped records captured since the last call, in commit
    /// order (per shard the order is the sequence order).
    pub fn take_shipped(&mut self) -> Vec<ShippedRecord> {
        std::mem::take(&mut self.shipped)
    }

    /// Enqueues `batch` for group commit and returns its [`Ticket`].
    ///
    /// The batch is split by key hash into per-shard sub-batches (each
    /// sub-batch stays atomic and in order on its shard); the ticket
    /// completes when every sub-batch has committed. Nothing reaches the
    /// engines until [`pump`](Store::pump)/[`drain`](Store::drain) runs.
    pub fn enqueue(&mut self, wopts: &WriteOptions, batch: &WriteBatch) -> Ticket {
        self.enqueue_ctx(wopts, batch, TraceCtx::NONE)
    }

    /// [`enqueue`](Store::enqueue) carrying a causal context: the group
    /// that eventually commits each per-shard part parents its
    /// [`EventClass::GroupCommit`] span under the leader's `ctx` and
    /// links coalesced followers' contexts in, so span trees cross the
    /// asynchronous ticket hand-off. Pass [`TraceCtx::NONE`] (or call
    /// `enqueue`) for untraced writers.
    pub fn enqueue_ctx(
        &mut self,
        wopts: &WriteOptions,
        batch: &WriteBatch,
        ctx: TraceCtx,
    ) -> Ticket {
        let id = self.next_ticket;
        self.next_ticket += 1;
        let mut split: Vec<WriteBatch> = vec![WriteBatch::new(); self.shards.len()];
        for (vt, k, v) in batch.ops() {
            let s = self.shard_of(k);
            match vt {
                ValueType::Deletion => split[s].delete(k),
                _ => split[s].put(k, v),
            }
        }
        let mut n_parts = 0;
        for (s, part) in split.into_iter().enumerate() {
            if part.is_empty() {
                continue;
            }
            n_parts += 1;
            self.shards[s].queue.push_back(Pending { ticket: id, wopts: *wopts, batch: part, ctx });
        }
        if n_parts == 0 {
            // Empty batch: durable by definition, right now.
            self.outcomes.insert(id, self.clock.now());
        } else {
            self.parts.insert(id, n_parts);
        }
        Ticket(id)
    }

    /// The instant `ticket`'s write became durable, once every per-shard
    /// part has committed; `None` while any part is still queued.
    pub fn outcome(&self, ticket: Ticket) -> Option<Nanos> {
        if self.parts.contains_key(&ticket.0) {
            return None;
        }
        self.outcomes.get(&ticket.0).copied()
    }

    /// One deterministic scheduler round: visits shards in index order and
    /// commits at most one coalesced group per shard. Returns the number
    /// of groups committed (0 when every queue is empty).
    ///
    /// # Errors
    ///
    /// Propagates engine errors; the failing group's tickets stay
    /// incomplete.
    pub fn pump(&mut self) -> Result<usize> {
        let mut committed = 0;
        for i in 0..self.shards.len() {
            if self.commit_group(i)? {
                committed += 1;
            }
        }
        Ok(committed)
    }

    /// Pumps until every shard queue is empty; returns the clock's instant
    /// after the last commit.
    ///
    /// # Errors
    ///
    /// Propagates engine errors.
    pub fn drain(&mut self) -> Result<Nanos> {
        while self.pump()? > 0 {}
        Ok(self.clock.now())
    }

    /// Commits one group on shard `idx`: pops the leader, folds queued
    /// followers into it within the byte/count budgets (never pairing a
    /// synced follower with a buffered leader), issues one engine write
    /// and completes every carried ticket with the group's durable
    /// instant.
    fn commit_group(&mut self, idx: usize) -> Result<bool> {
        let budget_bytes = self.budget_bytes;
        let budget_count = self.budget_count;
        let shard = &mut self.shards[idx];
        let Some(leader) = shard.queue.pop_front() else {
            return Ok(false);
        };
        let wopts = leader.wopts;
        let leader_ctx = leader.ctx;
        let mut merged = leader.batch;
        let mut tickets = vec![leader.ticket];
        let mut follower_ctxs: Vec<TraceCtx> = Vec::new();
        let mut bytes = merged.byte_size();
        while tickets.len() < budget_count {
            let Some(next) = shard.queue.front() else { break };
            if next.wopts.wants_sync() && !wopts.wants_sync() {
                break;
            }
            if bytes.saturating_add(next.batch.byte_size()) > budget_bytes {
                break;
            }
            let next = shard.queue.pop_front().expect("front() was Some");
            bytes = bytes.saturating_add(next.batch.byte_size());
            merged.extend(&next.batch);
            tickets.push(next.ticket);
            if !next.ctx.is_none() {
                follower_ctxs.push(next.ctx);
            }
        }
        let start = self.clock.now();
        // Capture the payload before the write consumes the batch; the
        // engine assigns the group the next contiguous sequence range, so
        // the shipped record's seq tags are exact.
        let first_seq = shard.db.last_sequence() + 1;
        let payload = if self.shipping {
            let entries: Vec<(ValueType, &[u8], &[u8])> = merged.ops().collect();
            encode_batch(first_seq, &entries)
        } else {
            Vec::new()
        };
        // Open the group span before the engine write so the engine /
        // ext4 / SSD spans it provokes nest under it. The leader's
        // request context (if any) parents the group; coalesced
        // followers' contexts are grafted in as links.
        let group_ctx = match &self.trace {
            Some(sink) => sink.begin_span_with_parent(Some(leader_ctx)),
            None => TraceCtx::NONE,
        };
        let end = match shard.db.write(&wopts, merged) {
            Ok(end) => end,
            Err(e) => {
                if let Some(sink) = &self.trace {
                    sink.pop_ctx();
                }
                return Err(e);
            }
        };
        if self.shipping {
            let last_seq = self.shards[idx].db.last_sequence();
            self.shipped.push(ShippedRecord {
                shard: idx,
                first_seq,
                last_seq,
                payload,
                committed_at: end,
                ctx: group_ctx,
            });
            self.stats.shipped_records += 1;
        }
        if let Some(sink) = &self.trace {
            sink.end_span(EventClass::GroupCommit, start, end, bytes);
            for fctx in &follower_ctxs {
                sink.link(*fctx, group_ctx);
            }
        }
        self.stats.groups += 1;
        self.stats.batches += tickets.len() as u64;
        self.stats.merged_bytes += bytes;
        for t in tickets {
            let slot = self.outcomes.entry(t).or_insert(end);
            if end > *slot {
                *slot = end;
            }
            if let Some(remaining) = self.parts.get_mut(&t) {
                *remaining -= 1;
                if *remaining == 0 {
                    self.parts.remove(&t);
                }
            }
        }
        Ok(true)
    }

    /// Enqueues `batch`, drains the whole queue and returns the instant
    /// the batch became durable — the synchronous convenience wrapper
    /// around [`enqueue`](Store::enqueue) + [`drain`](Store::drain).
    ///
    /// # Errors
    ///
    /// Propagates engine errors.
    pub fn write(&mut self, wopts: &WriteOptions, batch: WriteBatch) -> Result<Nanos> {
        let t = self.enqueue(wopts, &batch);
        self.drain()?;
        Ok(self.outcome(t).expect("drained store completed the ticket"))
    }

    /// Point read, routed to the owning shard.
    ///
    /// # Errors
    ///
    /// [`Error::Usage`] when `ropts` carries a snapshot (snapshots are
    /// per-shard; take them on [`Store::shard_db_mut`] directly);
    /// otherwise propagates engine errors.
    pub fn get(&mut self, ropts: &ReadOptions<'_>, key: &[u8]) -> Result<Option<Vec<u8>>> {
        if ropts.snapshot.is_some() {
            return Err(Error::Usage(
                "store reads cannot carry a Db snapshot (snapshots are per-shard)".into(),
            ));
        }
        let idx = self.shard_of(key);
        self.shards[idx].db.get(ropts, key)
    }

    /// Pins one [`Snapshot`] per shard, in shard order, all at the same
    /// clock instant. The store is single-threaded, so the batch of pins
    /// is atomic: no write can land between two shards' pins, and the
    /// vector captures one consistent cross-shard cut. Release with
    /// [`release_snapshots`](Store::release_snapshots) so compactions can
    /// drop superseded entries again.
    pub fn pin_snapshots(&mut self) -> Vec<Snapshot> {
        self.shards.iter_mut().map(|s| s.db.snapshot()).collect()
    }

    /// Releases a cross-shard snapshot vector taken by
    /// [`pin_snapshots`](Store::pin_snapshots) (shard `i`'s snapshot is
    /// handed back to shard `i`'s engine).
    pub fn release_snapshots(&mut self, snaps: Vec<Snapshot>) {
        for (shard, snap) in self.shards.iter_mut().zip(snaps) {
            shard.db.release_snapshot(snap);
        }
    }

    /// Range scan across every shard: a k-way merge over one engine
    /// iterator per shard, each pinned at the corresponding snapshot in
    /// `snaps`. Tombstones are suppressed by the per-shard iterators; at
    /// shard boundaries (and on the impossible-by-routing equal-key tie)
    /// the lowest shard index wins, so row order is fully deterministic.
    /// Shards are read in parallel on the virtual timeline: the scan
    /// completes at the latest per-shard iterator instant, which is why
    /// short-range scan throughput rises with shard count.
    ///
    /// # Errors
    ///
    /// [`Error::Usage`] when `snaps` was not pinned on this store (length
    /// mismatch); otherwise propagates engine errors.
    pub fn scan_at(&mut self, snaps: &[Snapshot], sopts: &ScanOptions<'_>) -> Result<ScanResult> {
        if snaps.len() != self.shards.len() {
            return Err(Error::Usage(
                "snapshot vector does not match the store's shard count".into(),
            ));
        }
        let start = sopts.effective_start().map(<[u8]>::to_vec);
        let end = sopts.effective_end();
        let fallback = self.clock.now();
        let mut collector = ScanCollector::new(sopts);
        let mut iters = Vec::with_capacity(self.shards.len());
        for (shard, snap) in self.shards.iter_mut().zip(snaps) {
            let ropts = if sopts.fill_cache {
                ReadOptions::at(snap)
            } else {
                ReadOptions::at(snap).without_fill_cache()
            };
            let mut it = shard.db.iter(&ropts)?;
            if sopts.reverse {
                match end.as_deref() {
                    Some(e) => {
                        it.seek(e)?;
                        if it.valid() {
                            it.prev()?;
                        } else {
                            it.seek_to_last()?;
                        }
                    }
                    None => it.seek_to_last()?,
                }
            } else {
                match start.as_deref() {
                    Some(s) => it.seek(s)?,
                    None => it.seek_to_first()?,
                }
            }
            iters.push(it);
        }
        loop {
            let mut best: Option<usize> = None;
            for (i, it) in iters.iter().enumerate() {
                if !it.valid() {
                    continue;
                }
                // An iterator past its bound is exhausted for this scan:
                // forward motion only moves it further past `end`, reverse
                // motion further below `start`.
                let in_bounds = if sopts.reverse {
                    start.as_deref().is_none_or(|s| it.key() >= s)
                } else {
                    end.as_deref().is_none_or(|e| it.key() < e)
                };
                if !in_bounds {
                    continue;
                }
                best = match best {
                    None => Some(i),
                    // Strict comparison keeps the lowest shard on ties.
                    Some(b) if sopts.reverse && it.key() > iters[b].key() => Some(i),
                    Some(b) if !sopts.reverse && it.key() < iters[b].key() => Some(i),
                    keep => keep,
                };
            }
            let Some(b) = best else { break };
            if !collector.offer(iters[b].key(), iters[b].value()) {
                break;
            }
            if sopts.reverse {
                iters[b].prev()?;
            } else {
                iters[b].next()?;
            }
        }
        let end_t = iters.iter().map(|it| it.now()).max().unwrap_or(fallback);
        drop(iters);
        self.clock.advance_to(end_t);
        Ok(collector.finish())
    }

    /// Range scan at the latest state: pins a cross-shard snapshot,
    /// merges ([`scan_at`](Store::scan_at)) and releases the pins — the
    /// synchronous convenience the server's cursor machinery decomposes.
    ///
    /// # Errors
    ///
    /// [`Error::Usage`] when `ropts` carries a snapshot (cross-shard scans
    /// pin their own, one per shard); otherwise propagates engine errors.
    pub fn scan(&mut self, ropts: &ReadOptions<'_>, sopts: &ScanOptions<'_>) -> Result<ScanResult> {
        if ropts.snapshot.is_some() {
            return Err(Error::Usage(
                "store scans cannot carry a Db snapshot (the store pins one per shard)".into(),
            ));
        }
        let mut sopts = *sopts;
        sopts.fill_cache = sopts.fill_cache && ropts.fill_cache;
        let snaps = self.pin_snapshots();
        let result = self.scan_at(&snaps, &sopts);
        self.release_snapshots(snaps);
        result
    }

    /// Processes due background completions on every shard at the current
    /// instant, in shard order.
    ///
    /// # Errors
    ///
    /// Propagates engine errors.
    pub fn tick(&mut self) -> Result<()> {
        for shard in &mut self.shards {
            let now = self.clock.now();
            shard.db.tick(now)?;
        }
        Ok(())
    }

    /// Drains the queue, then flushes every shard's memtable.
    ///
    /// # Errors
    ///
    /// Propagates engine errors.
    pub fn flush(&mut self) -> Result<Nanos> {
        self.drain()?;
        for shard in &mut self.shards {
            let now = self.clock.now();
            shard.db.flush(now)?;
        }
        Ok(self.clock.now())
    }

    /// Drains the queue, then waits for every shard's background work to
    /// settle. Shards share one clock, so one shard's compactions can
    /// push the instant other shards settle at; loop until a full pass
    /// moves the clock no further.
    ///
    /// # Errors
    ///
    /// Propagates engine errors.
    pub fn wait_idle(&mut self) -> Result<Nanos> {
        self.drain()?;
        loop {
            let before = self.clock.now();
            for shard in &mut self.shards {
                let now = self.clock.now();
                shard.db.wait_idle(now)?;
            }
            if self.clock.now() == before {
                break;
            }
        }
        Ok(self.clock.now())
    }

    /// Installs one trace sink across every shard's full stack; the store
    /// itself emits a [`EventClass::GroupCommit`] span per coalesced
    /// group into the same sink.
    pub fn set_trace_sink(&mut self, sink: TraceSink) {
        for shard in &mut self.shards {
            shard.db.set_trace_sink(sink.clone());
        }
        self.trace = Some(sink);
    }

    /// Removes the trace sink from the store and every shard stack.
    pub fn clear_trace_sink(&mut self) {
        for shard in &mut self.shards {
            shard.db.clear_trace_sink();
        }
        self.trace = None;
    }

    /// Installs `hub` on every shard under a `shard<i>.` scope, so one hub
    /// carries the whole deployment's gauges as `shard0.ext4.dirty_bytes`,
    /// `shard1.engine.mem_bytes`, …
    pub fn set_metrics_hub(&mut self, hub: &MetricsHub) {
        for (i, shard) in self.shards.iter_mut().enumerate() {
            shard.db.set_metrics_hub(hub.scoped(&format!("shard{i}.")));
        }
    }

    /// Detaches the hub from every shard.
    pub fn clear_metrics_hub(&mut self) {
        for shard in &mut self.shards {
            shard.db.clear_metrics_hub();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nob_sim::Nanos;
    use noblsm::SyncMode;

    fn small_opts(shards: usize) -> StoreOptions {
        let mut db = Options::default().with_sync_mode(SyncMode::Always).with_table_size(64 << 10);
        db.level1_max_bytes = 256 << 10;
        StoreOptions { shards, db, ..StoreOptions::default() }
    }

    #[test]
    fn zero_shards_is_a_usage_error() {
        let Err(err) = Store::open(StoreOptions { shards: 0, ..StoreOptions::default() }) else {
            panic!("0 shards must be rejected");
        };
        assert!(matches!(err, Error::Usage(_)), "{err}");
    }

    #[test]
    fn routing_is_stable_and_in_range() {
        let store = Store::open(small_opts(3)).unwrap();
        for i in 0..100u64 {
            let k = i.to_be_bytes();
            let s = store.shard_of(&k);
            assert!(s < 3);
            assert_eq!(s, store.shard_of(&k), "routing must be deterministic");
        }
        // The hash must actually spread keys around.
        let hit: std::collections::BTreeSet<usize> =
            (0..100u64).map(|i| store.shard_of(&i.to_be_bytes())).collect();
        assert!(hit.len() > 1, "all keys landed on one shard");
    }

    #[test]
    fn writes_round_trip_across_shards() {
        let mut store = Store::open(small_opts(4)).unwrap();
        for i in 0..200u64 {
            let mut b = WriteBatch::new();
            b.put(format!("key{i:04}").as_bytes(), format!("val{i}").as_bytes());
            store.write(&WriteOptions::default(), b).unwrap();
        }
        for i in 0..200u64 {
            let got = store.get(&ReadOptions::default(), format!("key{i:04}").as_bytes()).unwrap();
            assert_eq!(got.as_deref(), Some(format!("val{i}").as_bytes()), "key{i:04}");
        }
    }

    #[test]
    fn leader_coalesces_followers_into_one_group() {
        let mut store = Store::open(small_opts(1)).unwrap();
        let mut tickets = Vec::new();
        for i in 0..8u64 {
            let mut b = WriteBatch::new();
            b.put(format!("k{i}").as_bytes(), b"v");
            tickets.push(store.enqueue(&WriteOptions::default(), &b));
        }
        assert_eq!(store.pending(), 8);
        for t in &tickets {
            assert!(store.outcome(*t).is_none(), "nothing committed before pump");
        }
        let groups = store.pump().unwrap();
        assert_eq!(groups, 1, "one leader carries all 8 batches");
        assert_eq!(store.pending(), 0);
        let end = store.outcome(tickets[0]).unwrap();
        for t in &tickets {
            assert_eq!(store.outcome(*t), Some(end), "followers inherit the leader's outcome");
        }
        assert_eq!(store.stats().groups, 1);
        assert_eq!(store.stats().batches, 8);
    }

    #[test]
    fn count_budget_splits_groups() {
        let mut store =
            Store::open(StoreOptions { group_budget_count: 3, ..small_opts(1) }).unwrap();
        for i in 0..7u64 {
            let mut b = WriteBatch::new();
            b.put(format!("k{i}").as_bytes(), b"v");
            store.enqueue(&WriteOptions::default(), &b);
        }
        store.drain().unwrap();
        // 7 batches under a count budget of 3 → groups of 3, 3, 1.
        assert_eq!(store.stats().groups, 3);
        assert_eq!(store.stats().batches, 7);
    }

    #[test]
    fn byte_budget_splits_groups() {
        let mut store =
            Store::open(StoreOptions { group_budget_bytes: 100, ..small_opts(1) }).unwrap();
        for i in 0..4u64 {
            let mut b = WriteBatch::new();
            b.put(format!("k{i}").as_bytes(), &[0u8; 60]);
            store.enqueue(&WriteOptions::default(), &b);
        }
        store.drain().unwrap();
        // ~62 bytes each under a 100-byte budget → no coalescing.
        assert_eq!(store.stats().groups, 4);
    }

    #[test]
    fn synced_follower_never_rides_buffered_leader() {
        let mut store = Store::open(small_opts(1)).unwrap();
        let mut b1 = WriteBatch::new();
        b1.put(b"a", b"1");
        let mut b2 = WriteBatch::new();
        b2.put(b"b", b"2");
        store.enqueue(&WriteOptions::buffered(), &b1);
        let t2 = store.enqueue(&WriteOptions::synced(), &b2);
        let groups = store.pump().unwrap();
        assert_eq!(groups, 1, "the synced batch must not join the buffered leader");
        assert!(store.outcome(t2).is_none());
        store.drain().unwrap();
        assert!(store.outcome(t2).is_some());
        assert_eq!(store.stats().groups, 2);
    }

    #[test]
    fn buffered_follower_rides_synced_leader() {
        let mut store = Store::open(small_opts(1)).unwrap();
        let mut b1 = WriteBatch::new();
        b1.put(b"a", b"1");
        let mut b2 = WriteBatch::new();
        b2.put(b"b", b"2");
        store.enqueue(&WriteOptions::synced(), &b1);
        store.enqueue(&WriteOptions::buffered(), &b2);
        assert_eq!(store.pump().unwrap(), 1);
        assert_eq!(store.stats().batches, 2, "buffered follower upgraded for free");
    }

    #[test]
    fn multi_shard_batch_completes_when_every_part_lands() {
        let mut store = Store::open(small_opts(4)).unwrap();
        let mut b = WriteBatch::new();
        for i in 0..64u64 {
            b.put(format!("key{i}").as_bytes(), b"v");
        }
        let t = store.enqueue(&WriteOptions::default(), &b);
        // One pump commits one group per shard — with 64 keys over 4
        // shards every shard holds exactly one part, so the ticket lands.
        store.pump().unwrap();
        let end = store.outcome(t).expect("every shard committed its part");
        assert!(end > Nanos::ZERO);
        for i in 0..64u64 {
            let got = store.get(&ReadOptions::default(), format!("key{i}").as_bytes()).unwrap();
            assert_eq!(got.as_deref(), Some(&b"v"[..]));
        }
    }

    #[test]
    fn per_shard_order_is_arrival_order() {
        let mut store = Store::open(small_opts(2)).unwrap();
        // Three writers overwrite the same key; the last enqueued value
        // must win on its shard.
        for (i, v) in [b"first", b"secnd", b"third"].iter().enumerate() {
            let mut b = WriteBatch::new();
            b.put(b"contended", *v);
            let _ = i;
            store.enqueue(&WriteOptions::default(), &b);
        }
        store.drain().unwrap();
        let got = store.get(&ReadOptions::default(), b"contended").unwrap();
        assert_eq!(got.as_deref(), Some(&b"third"[..]));
    }

    #[test]
    fn empty_batch_is_durable_immediately() {
        let mut store = Store::open(small_opts(2)).unwrap();
        let t = store.enqueue(&WriteOptions::default(), &WriteBatch::new());
        assert!(store.outcome(t).is_some());
        assert_eq!(store.pending(), 0);
    }

    #[test]
    fn snapshot_read_options_are_rejected() {
        let mut store = Store::open(small_opts(2)).unwrap();
        let mut b = WriteBatch::new();
        b.put(b"k", b"v");
        store.write(&WriteOptions::default(), b).unwrap();
        let snap = store.shard_db_mut(0).snapshot();
        let err = store.get(&ReadOptions::at(&snap), b"k").unwrap_err();
        assert!(matches!(err, Error::Usage(_)), "{err}");
    }

    #[test]
    fn scan_merges_shards_in_sorted_order_and_hides_tombstones() {
        let mut store = Store::open(small_opts(4)).unwrap();
        for i in 0..300u64 {
            let mut b = WriteBatch::new();
            b.put(format!("key{i:03}").as_bytes(), format!("val{i}").as_bytes());
            store.enqueue(&WriteOptions::default(), &b);
        }
        store.drain().unwrap();
        let mut dels = WriteBatch::new();
        for i in (0..300u64).step_by(7) {
            dels.delete(format!("key{i:03}").as_bytes());
        }
        store.write(&WriteOptions::default(), dels).unwrap();
        let before = store.clock().now();
        let r = store.scan(&ReadOptions::default(), &ScanOptions::all()).unwrap();
        let expected: Vec<Vec<u8>> =
            (0..300u64).filter(|i| i % 7 != 0).map(|i| format!("key{i:03}").into_bytes()).collect();
        let got: Vec<Vec<u8>> = r.rows.iter().map(|(k, _)| k.clone()).collect();
        assert_eq!(got, expected, "merge must be globally sorted with tombstones hidden");
        assert_eq!(r.count, expected.len() as u64);
        assert!(r.resume.is_none(), "unbounded scan must not truncate");
        assert!(store.clock().now() > before, "scans cost virtual time");
    }

    #[test]
    fn scan_supports_reverse_limit_prefix_and_resume() {
        let mut store = Store::open(small_opts(3)).unwrap();
        for i in 0..100u64 {
            let mut b = WriteBatch::new();
            b.put(format!("key{i:02}").as_bytes(), b"v");
            store.enqueue(&WriteOptions::default(), &b);
        }
        store.drain().unwrap();
        // Forward pages of 30, chained through resume keys, cover the
        // keyspace exactly once in order.
        let mut seen = Vec::new();
        let mut cursor: Option<Vec<u8>> = Some(b"key".to_vec());
        while let Some(start) = cursor {
            let sopts = ScanOptions::starting_at(&start).with_limit(30);
            let page = store.scan(&ReadOptions::default(), &sopts).unwrap();
            assert!(page.rows.len() <= 30);
            seen.extend(page.rows.iter().map(|(k, _)| k.clone()));
            cursor = page.resume;
        }
        assert_eq!(seen.len(), 100);
        assert!(seen.windows(2).all(|w| w[0] < w[1]), "strictly ascending, no repeats");
        // Reverse visits the same rows backwards.
        let rev = store.scan(&ReadOptions::default(), &ScanOptions::all().reversed()).unwrap();
        let mut back: Vec<Vec<u8>> = rev.rows.iter().map(|(k, _)| k.clone()).collect();
        back.reverse();
        assert_eq!(back, seen);
        // Prefix narrows the range; count_only suppresses rows.
        let p = store
            .scan(&ReadOptions::default(), &ScanOptions::all().with_prefix(b"key1").counting())
            .unwrap();
        assert!(p.rows.is_empty(), "count_only materialises nothing");
        assert_eq!(p.count, 10, "key10..key19");
    }

    #[test]
    fn pinned_scan_matches_brute_force_merge_despite_concurrent_writes() {
        let mut store = Store::open(small_opts(3)).unwrap();
        let mut state = 0x9e37_79b9_u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state
        };
        for round in 0..4 {
            // Mutate: a pseudo-random mix of puts and deletes over a
            // keyspace that straddles every shard boundary.
            for _ in 0..120 {
                let r = next();
                let k = format!("key{:03}", r % 150);
                let mut b = WriteBatch::new();
                if r % 5 == 0 {
                    b.delete(k.as_bytes());
                } else {
                    b.put(k.as_bytes(), format!("r{round}-{r}").as_bytes());
                }
                store.enqueue(&WriteOptions::default(), &b);
            }
            store.drain().unwrap();
            let snaps = store.pin_snapshots();
            // Brute-force oracle: walk each shard's own iterator at its
            // pin and merge by sorting (keys are unique across shards).
            let mut expected = Vec::new();
            for (i, snap) in snaps.iter().enumerate() {
                let mut it = store.shard_db_mut(i).iter(&ReadOptions::at(snap)).unwrap();
                it.seek_to_first().unwrap();
                while it.valid() {
                    expected.push((it.key().to_vec(), it.value().to_vec()));
                    it.next().unwrap();
                }
            }
            expected.sort();
            // Writes and deletes after the pin must be invisible. The
            // sentinel is round-tagged: earlier rounds' sentinels are
            // legitimate pre-pin state by now.
            let sentinel = format!("AFTER-PIN-{round}").into_bytes();
            for j in 0..150u64 {
                let mut b = WriteBatch::new();
                if j % 3 == 0 {
                    b.delete(format!("key{j:03}").as_bytes());
                } else {
                    b.put(format!("key{j:03}").as_bytes(), &sentinel);
                }
                store.enqueue(&WriteOptions::default(), &b);
            }
            store.drain().unwrap();
            let got = store.scan_at(&snaps, &ScanOptions::all()).unwrap();
            assert_eq!(got.rows, expected, "round {round}: torn cross-shard scan");
            assert!(got.rows.iter().all(|(_, v)| *v != sentinel));
            store.release_snapshots(snaps);
        }
    }

    #[test]
    fn scan_rejects_foreign_snapshots_and_mismatched_pins() {
        let mut store = Store::open(small_opts(2)).unwrap();
        let snap = store.shard_db_mut(0).snapshot();
        let err = store.scan(&ReadOptions::at(&snap), &ScanOptions::all()).unwrap_err();
        assert!(matches!(err, Error::Usage(_)), "{err}");
        let err = store.scan_at(&[], &ScanOptions::all()).unwrap_err();
        assert!(matches!(err, Error::Usage(_)), "{err}");
        store.shard_db_mut(0).release_snapshot(snap);
    }

    #[test]
    fn identical_runs_are_deterministic() {
        let run = || {
            let mut store = Store::open(small_opts(3)).unwrap();
            for i in 0..100u64 {
                let mut b = WriteBatch::new();
                b.put(format!("key{i:03}").as_bytes(), &[i as u8; 100]);
                store.enqueue(&WriteOptions::default(), &b);
                if i % 5 == 4 {
                    store.pump().unwrap();
                }
            }
            store.drain().unwrap();
            (store.clock().now(), store.stats())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn group_commit_emits_trace_spans() {
        let sink = TraceSink::new();
        let mut store = Store::open(small_opts(1)).unwrap();
        store.set_trace_sink(sink.clone());
        for i in 0..4u64 {
            let mut b = WriteBatch::new();
            b.put(format!("k{i}").as_bytes(), b"v");
            store.enqueue(&WriteOptions::default(), &b);
        }
        store.drain().unwrap();
        let h = sink.histogram(EventClass::GroupCommit);
        assert_eq!(h.count(), 1, "one coalesced group, one span");
        assert!(sink.events() > 1, "shard engines share the sink");
    }

    #[test]
    fn group_commit_span_parents_under_leader_and_links_followers() {
        let sink = TraceSink::new();
        let mut store = Store::open(small_opts(1)).unwrap();
        store.set_trace_sink(sink.clone());
        let leader_root = sink.mint_root();
        let follower_root = sink.mint_root();
        let mut b1 = WriteBatch::new();
        b1.put(b"a", b"1");
        let mut b2 = WriteBatch::new();
        b2.put(b"b", b"2");
        store.enqueue_ctx(&WriteOptions::default(), &b1, leader_root);
        store.enqueue_ctx(&WriteOptions::default(), &b2, follower_root);
        store.drain().unwrap();
        let (events, links) = sink.snapshot();
        let group =
            events.iter().find(|e| e.class == EventClass::GroupCommit).expect("one group span");
        assert_eq!(group.trace, leader_root.trace, "group joins the leader's trace");
        assert_eq!(group.parent, leader_root.span);
        // The engine write it issued nests underneath.
        let put = events.iter().find(|e| e.class == EventClass::EnginePut).unwrap();
        assert_eq!(put.parent, group.span);
        assert_eq!(put.trace, leader_root.trace);
        // The coalesced follower's root grafts onto the group span.
        assert_eq!(links.len(), 1);
        assert_eq!(links[0].from, follower_root.span);
        assert_eq!(links[0].to, group.span);
        // Shipping off: nothing captured, but the record ctx plumbing is
        // covered by shipped_records_carry_group_ctx below.
    }

    #[test]
    fn shipped_records_carry_group_ctx() {
        let sink = TraceSink::new();
        let mut store = Store::open(small_opts(1)).unwrap();
        store.set_trace_sink(sink.clone());
        store.enable_shipping();
        let root = sink.mint_root();
        let mut b = WriteBatch::new();
        b.put(b"k", b"v");
        store.enqueue_ctx(&WriteOptions::default(), &b, root);
        store.drain().unwrap();
        let shipped = store.take_shipped();
        assert_eq!(shipped.len(), 1);
        let rec = &shipped[0];
        assert!(!rec.ctx.is_none());
        assert_eq!(rec.ctx.trace, root.trace, "record carries the group span's identity");
        let (events, _) = sink.snapshot();
        let group = events.iter().find(|e| e.class == EventClass::GroupCommit).unwrap();
        assert_eq!(rec.ctx.span, group.span);
    }

    #[test]
    fn scoped_metrics_namespace_per_shard() {
        let hub = MetricsHub::new().with_period(Nanos::from_millis(1));
        let mut store = Store::open(small_opts(2)).unwrap();
        store.set_metrics_hub(&hub);
        for i in 0..50u64 {
            let mut b = WriteBatch::new();
            b.put(format!("key{i}").as_bytes(), &[0u8; 200]);
            store.enqueue(&WriteOptions::default(), &b);
        }
        store.drain().unwrap();
        store.wait_idle().unwrap();
        let tl = hub.timeline();
        assert!(
            tl.series.iter().any(|s| s.name.starts_with("shard0.")),
            "expected shard0.* series"
        );
        assert!(
            tl.series.iter().any(|s| s.name.starts_with("shard1.")),
            "expected shard1.* series"
        );
        store.clear_metrics_hub();
    }

    #[test]
    fn shipping_is_off_by_default() {
        let mut store = Store::open(small_opts(2)).unwrap();
        assert!(!store.shipping_enabled());
        let mut b = WriteBatch::new();
        b.put(b"k", b"v");
        store.write(&WriteOptions::default(), b).unwrap();
        assert!(store.take_shipped().is_empty());
        assert_eq!(store.stats().shipped_records, 0);
    }

    #[test]
    fn shipped_records_chain_per_shard_and_decode() {
        let mut store = Store::open(small_opts(2)).unwrap();
        store.enable_shipping();
        for i in 0..40u64 {
            let mut b = WriteBatch::new();
            b.put(format!("key{i:02}").as_bytes(), format!("val{i}").as_bytes());
            store.enqueue(&WriteOptions::default(), &b);
            if i % 8 == 7 {
                store.pump().unwrap();
            }
        }
        store.drain().unwrap();
        let shipped = store.take_shipped();
        assert_eq!(store.stats().shipped_records, shipped.len() as u64);
        assert_eq!(shipped.len() as u64, store.stats().groups);
        // Per shard the records form a gap-free sequence chain, and each
        // payload decodes back to a batch tagged with the record's range.
        let mut next: Vec<u64> = vec![1; store.shards()];
        let mut applied = 0u64;
        for rec in &shipped {
            assert_eq!(rec.first_seq, next[rec.shard], "gap on shard {}", rec.shard);
            let batch = noblsm::decode_batch(&rec.payload).unwrap();
            assert_eq!(batch.seq, rec.first_seq);
            assert_eq!(rec.last_seq, rec.first_seq + batch.entries.len() as u64 - 1);
            next[rec.shard] = rec.last_seq + 1;
            applied += batch.entries.len() as u64;
        }
        assert_eq!(applied, 40, "every write shipped exactly once");
        // shard_seqs reports exactly where each chain stopped.
        let seqs = store.shard_seqs();
        for (i, seq) in seqs.iter().enumerate() {
            assert_eq!(*seq, next[i] - 1, "shard {i}");
        }
        // Drained; a second take returns nothing until new commits land.
        assert!(store.take_shipped().is_empty());
    }
}
