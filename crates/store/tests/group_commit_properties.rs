//! Group-commit correctness: coalescing must never change what a batch
//! means. A coalesced batch stays atomic, per-shard application order is
//! enqueue order, and a crash mid-group-commit can never surface a
//! follower's write without its leader's.

use std::collections::HashMap;

use nob_sim::Nanos;
use nob_store::{Store, StoreOptions};
use noblsm::{Db, Options, ReadOptions, SyncMode, WriteBatch, WriteOptions};
use proptest::prelude::*;

fn small_db() -> Options {
    let mut o = Options::default().with_sync_mode(SyncMode::Always).with_table_size(8 << 10);
    o.level1_max_bytes = 32 << 10;
    o
}

fn kname(k: u16) -> Vec<u8> {
    format!("key{k:05}").into_bytes()
}

fn vname(k: u16, v: u16) -> Vec<u8> {
    let mut out = format!("value-{k}-{v}-").into_bytes();
    out.resize(48, b'p');
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random writer batches, random pump interleavings, random shard
    /// counts and group budgets: after the queue drains, every ticket has
    /// completed and every key reads back exactly what sequential,
    /// enqueue-ordered application of the batches would produce. That is
    /// the whole group-commit contract — coalescing is invisible to
    /// semantics, it only changes how many engine writes were paid.
    #[test]
    fn coalesced_batches_stay_atomic_and_ordered(
        batches in proptest::collection::vec(
            proptest::collection::vec((0u16..64, 0u16..1000), 1..6),
            1..40,
        ),
        shards in 1usize..5,
        budget_count in 1usize..9,
        pump_every in 1usize..6,
    ) {
        let mut store = Store::open(StoreOptions {
            shards,
            group_budget_count: budget_count,
            db: small_db(),
            ..StoreOptions::default()
        })
        .unwrap();
        let mut model: HashMap<Vec<u8>, Option<Vec<u8>>> = HashMap::new();
        let mut tickets = Vec::new();
        let mut expected_parts = 0u64;
        for (bi, ops) in batches.iter().enumerate() {
            let mut wb = WriteBatch::new();
            for (k, v) in ops {
                let key = kname(*k);
                // ~1 op in 7 is a deletion; deriving it from the value
                // keeps the strategy tuple simple.
                if *v % 7 == 0 {
                    wb.delete(&key);
                    model.insert(key, None);
                } else {
                    let value = vname(*k, *v);
                    wb.put(&key, &value);
                    model.insert(key, Some(value));
                }
            }
            let touched: std::collections::BTreeSet<usize> =
                wb.ops().map(|(_, k, _)| store.shard_of(k)).collect();
            expected_parts += touched.len() as u64;
            tickets.push(store.enqueue(&WriteOptions::default(), &wb));
            if bi % pump_every == 0 {
                store.pump().unwrap();
            }
        }
        store.drain().unwrap();
        for t in &tickets {
            prop_assert!(store.outcome(*t).is_some(), "ticket left incomplete after drain");
        }
        prop_assert_eq!(store.pending(), 0);
        for (k, want) in &model {
            let got = store.get(&ReadOptions::default(), k).unwrap();
            prop_assert_eq!(
                got.as_deref(),
                want.as_deref(),
                "key {} diverged from sequential application",
                String::from_utf8_lossy(k)
            );
        }
        // `batches` counts per-shard sub-batches (one ticket touching K
        // shards contributes K), and every one of them must have retired
        // through some group.
        let s = store.stats();
        prop_assert!(s.groups <= s.batches);
        prop_assert_eq!(s.batches, expected_parts);
    }
}

/// Reads the recovered state of one shard engine as a map.
fn dump(db: &mut Db, now: Nanos) -> HashMap<Vec<u8>, Vec<u8>> {
    let mut out = HashMap::new();
    let mut it = db.iter_at(now).unwrap();
    it.seek_to_first().unwrap();
    while it.valid() {
        out.insert(it.key().to_vec(), it.value().to_vec());
        it.next().unwrap();
    }
    out
}

/// Crash mid-group-commit: the leader and its followers become ONE WAL
/// record, so no crash instant may surface a follower's write without the
/// leader's. We build several groups on one shard (keys chosen to route
/// there), drain, then sweep crash instants across the whole run and
/// check the implication on every recovered view.
#[test]
fn crash_never_surfaces_follower_without_leader() {
    let mut store = Store::open(StoreOptions {
        shards: 2,
        group_budget_count: 4,
        db: small_db(),
        ..StoreOptions::default()
    })
    .unwrap();

    // Pick keys that all route to shard 0 so every group is coalesced
    // there and the crash analysis has one WAL to reason about.
    let mut shard0_keys = Vec::new();
    let mut probe = 0u32;
    while shard0_keys.len() < 16 {
        let k = format!("gk{probe:06}").into_bytes();
        if store.shard_of(&k) == 0 {
            shard0_keys.push(k);
        }
        probe += 1;
    }

    // 4 groups × (1 leader + 3 followers), each batch one distinct key.
    // Within a group, index 0 is the leader (enqueued first).
    let mut groups: Vec<Vec<(Vec<u8>, Vec<u8>)>> = Vec::new();
    for g in 0..4usize {
        let mut group = Vec::new();
        for m in 0..4usize {
            let key = shard0_keys[g * 4 + m].clone();
            let value = format!("g{g}m{m}").into_bytes();
            group.push((key, value));
        }
        groups.push(group);
    }
    for group in &groups {
        for (key, value) in group {
            let mut b = WriteBatch::new();
            b.put(key, value);
            store.enqueue(&WriteOptions::synced(), &b);
        }
        // One pump per group: the first batch leads, the rest follow.
        store.pump().unwrap();
    }
    let end = store.drain().unwrap();
    assert_eq!(store.stats().groups, 4, "each pump must have coalesced one group");
    assert_eq!(store.stats().batches, 16);

    let fs = store.shard_db(0).fs().clone();
    let steps = 200u64;
    for i in 0..=steps {
        let at = Nanos::from_nanos(end.as_nanos() * i / steps);
        let crashed = fs.crashed_view(at);
        let mut rdb = Db::open(crashed, "shard0", small_db(), at).unwrap();
        let got = dump(&mut rdb, at);
        for (g, group) in groups.iter().enumerate() {
            let leader_ok = got.get(&group[0].0).map(Vec::as_slice) == Some(group[0].1.as_slice());
            for (m, (key, value)) in group.iter().enumerate().skip(1) {
                let follower_ok = got.get(key).map(Vec::as_slice) == Some(value.as_slice());
                assert!(
                    !follower_ok || leader_ok,
                    "crash at {at:?}: group {g} follower {m} survived without its leader"
                );
            }
        }
    }

    // Sanity: with SyncMode::Always and synced groups, the final instant
    // recovers everything.
    let crashed = fs.crashed_view(end);
    let mut rdb = Db::open(crashed, "shard0", small_db(), end).unwrap();
    let got = dump(&mut rdb, end);
    for group in &groups {
        for (key, value) in group {
            assert_eq!(got.get(key).map(Vec::as_slice), Some(value.as_slice()));
        }
    }
}
