//! Policy-level models of the seven LSM-trees the NobLSM paper evaluates.
//!
//! Each [`Variant`] configures the shared engine (`noblsm::Db`) to
//! reproduce the property the paper attributes to that system:
//!
//! | Variant | Key property modelled |
//! |---|---|
//! | `LevelDb` | fsync every new SSTable and the MANIFEST, single background thread |
//! | `VolatileLevelDb` | all syncs disabled (motivation experiments only) |
//! | `Bolt` | one large *physical* SSTable per compaction, synced once; logical tables re-synced whenever future compactions touch them |
//! | `L2sm` | hot keys diverted from compaction push-down (log-assisted de-amplification) |
//! | `RocksDb` | 4 parallel compaction lanes, larger L1 budget |
//! | `HyperLevelDb` | 2 parallel lanes, *hardcoded* small SSTables (the paper notes Hyper ignores the 64 MB setting) |
//! | `PebblesDb` | fragmented (guard-style) compaction: parent files pushed down without rewriting the child level |
//! | `NobLsm` | syncs only at minor compaction; major compactions ride Ext4's async commits with predecessor/successor tracking |
//!
//! # Examples
//!
//! ```
//! use nob_baselines::Variant;
//! use nob_ext4::{Ext4Config, Ext4Fs};
//! use nob_sim::Nanos;
//! use noblsm::Options;
//!
//! # fn main() -> Result<(), noblsm::DbError> {
//! let fs = Ext4Fs::new(Ext4Config::default());
//! let base = Options::default().with_table_size(64 << 20);
//! let mut db = Variant::NobLsm.open(fs, "db", &base, Nanos::ZERO)?;
//! let mut batch = noblsm::WriteBatch::new();
//! batch.put(b"k", b"v");
//! db.write(&noblsm::WriteOptions::default(), batch)?;
//! # Ok(())
//! # }
//! ```

use nob_ext4::Ext4Fs;
use nob_sim::{Nanos, SharedClock};
use noblsm::{CompactionStyle, Db, Options, Result, SyncMode};

/// One of the systems compared in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// Original LevelDB 1.23.
    LevelDb,
    /// LevelDB with every sync disabled (§3's motivation build).
    VolatileLevelDb,
    /// BoLT (Middleware '20): barrier-optimized grouped SSTables.
    Bolt,
    /// L2SM (ICDE '21): log-assisted hot/cold de-amplification.
    L2sm,
    /// RocksDB-like: parallelized compactions, bigger level budgets.
    RocksDb,
    /// HyperLevelDB-like: parallel compactions, hardcoded small tables.
    HyperLevelDb,
    /// PebblesDB (SOSP '17): fragmented LSM with guards.
    PebblesDb,
    /// This paper's system.
    NobLsm,
}

impl Variant {
    /// The seven systems of Figs. 4–5 and Table 1, in the paper's order.
    pub fn paper_seven() -> [Variant; 7] {
        [
            Variant::LevelDb,
            Variant::Bolt,
            Variant::L2sm,
            Variant::RocksDb,
            Variant::HyperLevelDb,
            Variant::PebblesDb,
            Variant::NobLsm,
        ]
    }

    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Variant::LevelDb => "LevelDB",
            Variant::VolatileLevelDb => "LevelDB-nosync",
            Variant::Bolt => "BoLT",
            Variant::L2sm => "L2SM",
            Variant::RocksDb => "RocksDB",
            Variant::HyperLevelDb => "HyperLevelDB",
            Variant::PebblesDb => "PebblesDB",
            Variant::NobLsm => "NobLSM",
        }
    }

    /// Derives this variant's engine options from the harness baseline
    /// (which fixes the table size, level budgets and CPU model).
    pub fn options(&self, base: &Options) -> Options {
        let mut o = base.clone();
        match self {
            Variant::LevelDb => {
                o.sync_mode = SyncMode::Always;
            }
            Variant::VolatileLevelDb => {
                o.sync_mode = SyncMode::Never;
            }
            Variant::Bolt => {
                o.sync_mode = SyncMode::Always;
                o.grouped_output = true;
                // The paper attributes extra cost to BoLT's maintenance of
                // logical SSTables (§5.2); modelled as per-op CPU.
                o.extra_op_cpu = Nanos::from_nanos(3_000);
            }
            Variant::L2sm => {
                o.sync_mode = SyncMode::Always;
                o.hot_cold = true;
            }
            Variant::RocksDb => {
                o.sync_mode = SyncMode::Always;
                o = o.with_lanes(4);
                // Write-group coordination and fine-grained locking.
                o.extra_op_cpu = Nanos::from_nanos(2_000);
                // RocksDB's default L1 budget (256 MB) is far larger than
                // LevelDB's 10 MB; scale the same ratio onto the base.
                o.level1_max_bytes = base.level1_max_bytes.saturating_mul(4);
            }
            Variant::HyperLevelDb => {
                o.sync_mode = SyncMode::Always;
                o = o.with_lanes(2);
                // Fine-grained synchronization on the write path (the
                // price of its parallelism on single-threaded loads).
                o.extra_op_cpu = Nanos::from_nanos(4_000);
                // Hyper hardcodes its sizes and does not benefit from the
                // harness's 64 MB setting (§5.1): smaller tables make it
                // sync a few times more often than LevelDB (Table 1's
                // outlier), while its overlap-minimizing picks (modelled
                // as a larger L1 budget) keep the synced volume below
                // LevelDB's.
                o.table_size = (base.table_size / 4).max(16 << 10);
                o.level1_max_bytes = base.level1_max_bytes.saturating_mul(4);
            }
            Variant::PebblesDb => {
                o.sync_mode = SyncMode::Always;
                o.style = CompactionStyle::Fragmented;
                o = o.with_lanes(2);
                // Guard maintenance and the HyperLevelDB base's locking:
                // the paper measures PebblesDB distinctly slower per
                // operation than its write volume alone would suggest
                // (Fig. 4a vs Table 1); modelled as per-op CPU plus the
                // FLSM CPU/IO trade-off its own paper reports (≈3× the
                // compaction CPU of LevelDB).
                o.extra_op_cpu = Nanos::from_nanos(6_000);
                o.cpu.next = o.cpu.next * 4;
                o.cpu.block_per_kib = o.cpu.block_per_kib * 4;
            }
            Variant::NobLsm => {
                o.sync_mode = SyncMode::NobLsm;
            }
        }
        o
    }

    /// Opens a database configured as this variant.
    ///
    /// # Errors
    ///
    /// Propagates engine open errors.
    pub fn open(&self, fs: Ext4Fs, dir: &str, base: &Options, now: Nanos) -> Result<Db> {
        Db::open(fs, dir, self.options(base), now)
    }

    /// Opens a database configured as this variant on a caller-owned
    /// [`SharedClock`] (see [`Db::open_with_clock`]).
    ///
    /// # Errors
    ///
    /// Propagates engine open errors.
    pub fn open_with_clock(
        &self,
        fs: Ext4Fs,
        dir: &str,
        base: &Options,
        clock: SharedClock,
    ) -> Result<Db> {
        Db::open_with_clock(fs, dir, self.options(base), clock)
    }
}

impl std::fmt::Display for Variant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nob_ext4::Ext4Config;
    use noblsm::{WriteBatch, WriteOptions};

    fn base() -> Options {
        let mut o = Options::default().with_table_size(32 << 10);
        o.level1_max_bytes = 128 << 10;
        o
    }

    fn fs() -> Ext4Fs {
        Ext4Fs::new(Ext4Config::default().with_page_cache(8 << 20))
    }

    fn put_at(db: &mut Db, now: Nanos, key: &[u8], value: &[u8]) -> Nanos {
        db.clock().advance_to(now);
        let mut batch = WriteBatch::new();
        batch.put(key, value);
        db.write(&WriteOptions::default(), batch).unwrap()
    }

    fn key(i: u64) -> Vec<u8> {
        format!("key{:08}", i).into_bytes()
    }

    fn load(db: &mut Db, n: u64, vlen: usize) -> Nanos {
        let mut now = Nanos::ZERO;
        for i in 0..n {
            let k = (i * 2654435761) % n;
            let mut v = format!("val{k}-").into_bytes();
            v.resize(vlen, b'z');
            now = put_at(db, now, &key(k), &v);
        }
        db.wait_idle(now).unwrap()
    }

    #[test]
    fn every_variant_preserves_data() {
        let mut variants = Variant::paper_seven().to_vec();
        variants.push(Variant::VolatileLevelDb);
        for v in variants {
            let fs = fs();
            let mut db = v.open(fs, "db", &base(), Nanos::ZERO).unwrap();
            let mut now = load(&mut db, 2000, 128);
            db.check_invariants().unwrap();
            for i in (0..2000u64).step_by(43) {
                let (got, t) = db.get_at_time(now, &key(i)).unwrap();
                now = t;
                assert!(got.is_some(), "{v}: key {i} lost");
            }
        }
    }

    #[test]
    fn sync_counts_follow_the_papers_ordering() {
        let run = |v: Variant| {
            let fs = fs();
            let mut db = v.open(fs.clone(), "db", &base(), Nanos::ZERO).unwrap();
            load(&mut db, 4000, 128);
            fs.stats().sync_calls
        };
        let leveldb = run(Variant::LevelDb);
        let noblsm = run(Variant::NobLsm);
        let hyper = run(Variant::HyperLevelDb);
        let volatile = run(Variant::VolatileLevelDb);
        // Table 1's ordering: NobLSM fewest, HyperLevelDB the outlier max.
        assert!(noblsm < leveldb, "NobLSM {noblsm} !< LevelDB {leveldb}");
        assert!(hyper > leveldb, "Hyper {hyper} !> LevelDB {leveldb}");
        assert!(volatile <= 1);
    }

    #[test]
    fn bolt_groups_outputs_into_fewer_physical_files() {
        let count_tables = |v: Variant| {
            let fs = fs();
            let mut db = v.open(fs.clone(), "db", &base(), Nanos::ZERO).unwrap();
            load(&mut db, 3000, 128);
            let logical: usize = db.level_file_counts().iter().sum();
            let physical = fs.list("db/").iter().filter(|p| p.ends_with(".ldb")).count();
            (logical, physical)
        };
        let (bolt_logical, bolt_physical) = count_tables(Variant::Bolt);
        assert!(bolt_physical <= bolt_logical, "grouped outputs cannot exceed logical tables");
        let (ldb_logical, ldb_physical) = count_tables(Variant::LevelDb);
        assert_eq!(ldb_logical, ldb_physical, "ungrouped: one file per table");
    }

    #[test]
    fn pebbles_writes_less_than_leveldb() {
        let run = |v: Variant| {
            let fs = fs();
            let mut db = v.open(fs, "db", &base(), Nanos::ZERO).unwrap();
            load(&mut db, 4000, 128);
            db.stats().compaction_bytes_written
        };
        let leveldb = run(Variant::LevelDb);
        let pebbles = run(Variant::PebblesDb);
        assert!(
            pebbles < leveldb,
            "fragmented compaction must reduce write amplification: {pebbles} vs {leveldb}"
        );
    }

    #[test]
    fn l2sm_tracks_leveldb_and_diverts_hot_keys() {
        // The paper's own data has L2SM ≈ LevelDB (Table 1: 1046 vs 1061
        // syncs, 60.98 vs 61.55 GB): hot/cold separation neither helps nor
        // hurts much on these workloads. Assert (a) L2SM stays within a
        // sane band of LevelDB and (b) the hot-diversion mechanism is
        // actually active under skew.
        let run = |v: Variant| {
            let fs = fs();
            let mut db = v.open(fs, "db", &base(), Nanos::ZERO).unwrap();
            let mut now = Nanos::ZERO;
            // Heavy skew: 90 % of updates hit 5 % of the keyspace.
            let mut state = 99u64;
            for i in 0..6000u64 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let k = if state % 10 < 9 { state % 100 } else { 100 + (i % 1900) };
                let mut val = format!("v{k}-{i}").into_bytes();
                val.resize(128, b'q');
                now = put_at(&mut db, now, &key(k), &val);
            }
            db.wait_idle(now).unwrap();
            let hot_files: usize =
                db.current_version().files.iter().map(|l| l.iter().filter(|f| f.hot).count()).sum();
            (db.stats().compaction_bytes_written, hot_files)
        };
        let (leveldb, ldb_hot) = run(Variant::LevelDb);
        let (l2sm, l2sm_hot) = run(Variant::L2sm);
        assert_eq!(ldb_hot, 0, "LevelDB must not produce hot files");
        assert!(l2sm_hot > 0, "L2SM must divert hot keys under skew");
        assert!(
            l2sm * 2 < leveldb * 3 && leveldb * 2 < l2sm * 5,
            "L2SM should track LevelDB within a band: {l2sm} vs {leveldb}"
        );
    }

    #[test]
    fn variant_names_are_stable() {
        assert_eq!(Variant::NobLsm.to_string(), "NobLSM");
        assert_eq!(Variant::paper_seven().len(), 7);
        assert_eq!(Variant::paper_seven()[0].name(), "LevelDB");
        assert_eq!(Variant::paper_seven()[6].name(), "NobLSM");
    }

    #[test]
    fn hyper_hardcodes_small_tables() {
        let o = Variant::HyperLevelDb.options(&Options::default().with_table_size(64 << 20));
        assert_eq!(o.table_size, 16 << 20, "hardcoded, ignores the 64 MB setting");
        assert_eq!(o.write_buffer_size, 64 << 20, "memtable keeps the harness size");
        let o2 = Variant::LevelDb.options(&Options::default().with_table_size(64 << 20));
        assert_eq!(o2.table_size, 64 << 20);
    }
}
