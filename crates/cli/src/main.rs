//! `noblsm-cli` — an interactive shell (or script runner) over the NobLSM
//! simulation, plus the network subcommands.
//!
//! ```sh
//! noblsm-cli                 # interactive
//! noblsm-cli script.txt      # run a command script
//! noblsm-cli serve --addr 127.0.0.1:6380 --shards 4
//! noblsm-cli bench-net --clients 8 --ops 4000 [--addr host:port]
//! ```

use std::io::{BufRead, Write};

use nob_cli::Session;

/// Reads `--flag value` from an argument list, else the default.
fn flag<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    args.windows(2).find(|w| w[0] == name).and_then(|w| w[1].parse().ok()).unwrap_or(default)
}

fn serve_cmd(args: &[String]) {
    let addr: String = flag(args, "--addr", "127.0.0.1:6380".to_string());
    let shards: usize = flag(args, "--shards", 2);
    let server = nob_cli::net::serve(&addr, shards).unwrap_or_else(|e| {
        eprintln!("cannot serve on {addr}: {e}");
        std::process::exit(1);
    });
    println!("serving {shards} shard(s) on {}; press Enter to stop", server.local_addr());
    let mut line = String::new();
    let _ = std::io::stdin().lock().read_line(&mut line);
    match server.shutdown() {
        Ok(core) => {
            let stats = core.store().stats();
            println!("drained: {} groups for {} batches; goodbye", stats.groups, stats.batches);
        }
        Err(e) => {
            eprintln!("shutdown error: {e}");
            std::process::exit(1);
        }
    }
}

fn bench_net_cmd(args: &[String]) {
    let clients: usize = flag(args, "--clients", 8);
    let ops: u64 = flag(args, "--ops", 4_000);
    let value_size: usize = flag(args, "--value-size", 100);
    let addr: Option<String> = args.windows(2).find(|w| w[0] == "--addr").map(|w| w[1].clone());
    match nob_cli::net::bench_net(addr.as_deref(), clients, ops, value_size) {
        Ok(report) => print!("{report}"),
        Err(e) => {
            eprintln!("bench-net failed: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let mut session = Session::new();
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("serve") => return serve_cmd(&args[2..]),
        Some("bench-net") => return bench_net_cmd(&args[2..]),
        _ => {}
    }
    if let Some(path) = args.get(1) {
        let script = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        });
        print!("{}", session.run_script(&script));
        return;
    }
    println!("noblsm-cli — type `help` for commands, `quit` to exit");
    let stdin = std::io::stdin();
    loop {
        print!("> ");
        std::io::stdout().flush().expect("stdout");
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let trimmed = line.trim();
        if trimmed == "quit" || trimmed == "exit" {
            break;
        }
        print!("{}", session.run_line(trimmed));
    }
}
