//! `noblsm-cli` — an interactive shell (or script runner) over the NobLSM
//! simulation.
//!
//! ```sh
//! noblsm-cli                 # interactive
//! noblsm-cli script.txt      # run a command script
//! ```

use std::io::{BufRead, Write};

use nob_cli::Session;

fn main() {
    let mut session = Session::new();
    let args: Vec<String> = std::env::args().collect();
    if let Some(path) = args.get(1) {
        let script = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        });
        print!("{}", session.run_script(&script));
        return;
    }
    println!("noblsm-cli — type `help` for commands, `quit` to exit");
    let stdin = std::io::stdin();
    loop {
        print!("> ");
        std::io::stdout().flush().expect("stdout");
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let trimmed = line.trim();
        if trimmed == "quit" || trimmed == "exit" {
            break;
        }
        print!("{}", session.run_line(trimmed));
    }
}
