//! The command interpreter behind `noblsm-cli`: a scriptable driver for a
//! simulated NobLSM database — open a store, write, read, scan, advance
//! virtual time, pull the power cable, and inspect engine internals.
//!
//! # Commands
//!
//! ```text
//! open <mode>            noblsm | leveldb | volatile | bolt | pebbles …
//! put <key> <value>      insert/overwrite
//! get <key>              point read
//! del <key>              delete
//! scan <start> <n> [reverse] [count]   range scan (optionally reversed
//!                        or counting rows without materialising them)
//! fill <n> <value_size>  bulk-load n random records
//! advance <ms>           advance virtual time (journal timers fire)
//! crash <percent>        power-off at a fraction of elapsed time + reopen
//! flush                  force the memtable to L0
//! compact                full manual compaction
//! compact status         lane occupancy, pressure, debt, stage split
//! compact lanes <n>      reconfigure the compaction lane count
//! stats                  engine + filesystem counters
//! levels                 files per level
//! time                   current virtual instant
//! chaos <seed> [pm] [fseed]   one fault-injected crash/recovery case
//! chaos sweep [seeds] [points]  campaign over seeds × crash points
//! trace on|off           start/stop recording spans from all layers
//! trace summary          per-class latency percentiles + top stalls
//! trace stalls           the recorded stalls with causal attribution
//! trace tree [trace_id]  render recorded span trees (all roots, or one)
//! trace critical [n]     critical-path decomposition + n slowest trees
//! trace export json|chrome <path>   dump raw spans to a file
//! metrics                the leveldb.stats-style per-level table
//! metrics on|off         start/stop gauge sampling (100 ms virtual grid)
//! metrics timeline       sampled gauges as ASCII sparklines
//! metrics export [--format] prom|json [path]   exposition / raw timeline
//! store open <shards> [mode]     open a sharded store (own stacks)
//! store put <key> <value>        enqueue + group-commit one write
//! store get <key>                routed point read
//! store scan <start> <n> [reverse] [count]  snapshot-pinned merge scan
//!                                across every shard
//! store fill <n> <vsize> [writers]  n records from W logical writers
//! store stats                    group-commit counters + shard levels
//! store close                    drop the store
//! repl open [shards]             leader + loopback follower pair
//! repl put <key> <value>         committed write on the leader
//! repl follow                    ship -> apply -> ack until the link idles
//! repl get <key> [staleness_ms]  bounded-staleness follower read
//! repl subscribe [from_seq]      (re)connect the changefeed + drain it
//! repl promote                   follower -> leader, fence the old epoch
//! repl status                    epochs, sequences, lag, staleness
//! repl close                     drop the replication pair
//! help                   this text
//! ```
//!
//! # Examples
//!
//! ```
//! use nob_cli::Session;
//!
//! let mut s = Session::new();
//! let out = s.run_script("open noblsm\nput k hello\nget k\n");
//! assert!(out.contains("hello"));
//! ```

pub mod net;

use std::fmt::Write as _;

use nob_baselines::Variant;
use nob_ext4::Ext4Fs;
use nob_metrics::{MetricsHub, DEFAULT_PERIOD};
use nob_repl::{
    shared as shared_repl, Follower, FollowerLink, Leader, ReplCore, ReplLoopback, SharedRepl,
    Subscription,
};
use nob_sim::{Nanos, SharedClock};
use nob_store::{Store, StoreOptions};
use nob_trace::TraceSink;
use nob_workloads::dbbench;
use noblsm::{Db, Error, Options, ReadOptions, ScanOptions, WriteBatch, WriteOptions};

/// One interactive session: a filesystem, an optional open database, and
/// the session's shared virtual clock.
pub struct Session {
    fs: Ext4Fs,
    db: Option<Db>,
    variant: Variant,
    /// The session's clock, shared with the open database: commands no
    /// longer thread `now` by hand, they read and advance this.
    clock: SharedClock,
    /// Optional sharded store, independent of the session's single `db`.
    store: Option<Store>,
    /// Optional replication pair, independent of `db` and `store`.
    repl: Option<ReplSession>,
    /// Live trace sink, kept across `open`/`crash` reattachments.
    trace: Option<TraceSink>,
    /// Live metrics hub, kept across `open`/`crash` reattachments.
    metrics: Option<MetricsHub>,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("open", &self.db.is_some())
            .field("now", &self.clock.now())
            .finish()
    }
}

/// The `repl` command family's state: the leader behind the shared
/// core, the follower link (absent once promoted), and at most one
/// changefeed. The pair lives on its own shared virtual clock, like the
/// chaos and bench harnesses.
struct ReplSession {
    core: SharedRepl,
    link: Option<FollowerLink<ReplLoopback>>,
    sub: Option<Subscription<ReplLoopback>>,
}

fn base_options() -> Options {
    let mut o = Options::default().with_table_size(256 << 10);
    o.level1_max_bytes = 1 << 20;
    o
}

impl Session {
    /// Creates a session over a fresh simulated filesystem.
    pub fn new() -> Self {
        Session {
            fs: Ext4Fs::new(nob_ext4::Ext4Config::default()),
            db: None,
            variant: Variant::NobLsm,
            clock: SharedClock::new(),
            store: None,
            repl: None,
            trace: None,
            metrics: None,
        }
    }

    /// Executes one command line; returns its output.
    pub fn run_line(&mut self, line: &str) -> String {
        let mut out = String::new();
        if let Err(e) = self.dispatch(line.trim(), &mut out) {
            // Usage errors carry a ready-made message; engine errors keep
            // their full Display (layer prefix included).
            match e {
                Error::Usage(m) => {
                    let _ = writeln!(out, "error: {m}");
                }
                e => {
                    let _ = writeln!(out, "error: {e}");
                }
            }
        }
        out
    }

    /// Executes a newline-separated script; returns concatenated output.
    pub fn run_script(&mut self, script: &str) -> String {
        let mut out = String::new();
        for line in script.lines() {
            if line.trim().is_empty() || line.trim_start().starts_with('#') {
                continue;
            }
            out.push_str(&self.run_line(line));
        }
        out
    }

    fn db(&mut self) -> Result<&mut Db, Error> {
        self.db.as_mut().ok_or_else(|| Error::Usage("no database open (use `open <mode>`)".into()))
    }

    fn store(&mut self) -> Result<&mut Store, Error> {
        self.store
            .as_mut()
            .ok_or_else(|| Error::Usage("no store open (use `store open <shards>`)".into()))
    }

    fn repl(&mut self) -> Result<&mut ReplSession, Error> {
        self.repl
            .as_mut()
            .ok_or_else(|| Error::Usage("no replication pair (use `repl open [shards]`)".into()))
    }

    fn dispatch(&mut self, line: &str, out: &mut String) -> Result<(), Error> {
        let mut parts = line.split_whitespace();
        let Some(cmd) = parts.next() else { return Ok(()) };
        let args: Vec<&str> = parts.collect();
        match cmd {
            "open" => {
                let mode = args.first().copied().unwrap_or("noblsm");
                let variant = parse_variant(mode)?;
                let mut db = variant.open_with_clock(
                    self.fs.clone(),
                    "db",
                    &base_options(),
                    self.clock.clone(),
                )?;
                if let Some(sink) = &self.trace {
                    db.set_trace_sink(sink.clone());
                }
                if let Some(hub) = &self.metrics {
                    db.set_metrics_hub(hub.clone());
                }
                self.db = Some(db);
                self.variant = variant;
                let _ = writeln!(out, "opened {} at {}", variant.name(), self.clock.now());
            }
            "put" => {
                let [k, v] = args[..] else { return Err("usage: put <key> <value>".into()) };
                let mut batch = WriteBatch::new();
                batch.put(k.as_bytes(), v.as_bytes());
                let t = self.db()?.write(&WriteOptions::default(), batch)?;
                let _ = writeln!(out, "OK ({t})");
            }
            "get" => {
                let [k] = args[..] else { return Err("usage: get <key>".into()) };
                let k = k.as_bytes().to_vec();
                let got = self.db()?.get(&ReadOptions::default(), &k)?;
                let t = self.clock.now();
                match got {
                    Some(v) => {
                        let _ = writeln!(out, "{} ({t})", String::from_utf8_lossy(&v));
                    }
                    None => {
                        let _ = writeln!(out, "<not found> ({t})");
                    }
                }
            }
            "del" => {
                let [k] = args[..] else { return Err("usage: del <key>".into()) };
                let mut batch = WriteBatch::new();
                batch.delete(k.as_bytes());
                let t = self.db()?.write(&WriteOptions::default(), batch)?;
                let _ = writeln!(out, "OK ({t})");
            }
            "scan" => {
                let [start, n, flags @ ..] = &args[..] else {
                    return Err("usage: scan <start> <n> [reverse] [count]".into());
                };
                let n: usize = n.parse().map_err(|_| "n must be a number")?;
                let start = start.as_bytes().to_vec();
                let mut sopts = ScanOptions::starting_at(&start).with_limit(n);
                for f in flags {
                    match *f {
                        "reverse" => sopts = sopts.reversed(),
                        "count" => sopts = sopts.counting(),
                        _ => return Err("usage: scan <start> <n> [reverse] [count]".into()),
                    }
                }
                let r = self.db()?.scan(&ReadOptions::default(), &sopts)?;
                let t = self.clock.now();
                for (k, v) in &r.rows {
                    let _ = writeln!(
                        out,
                        "{} = {}",
                        String::from_utf8_lossy(k),
                        String::from_utf8_lossy(v)
                    );
                }
                let _ = writeln!(out, "({} rows, {t})", r.count);
            }
            "fill" => {
                let [n, vs] = args[..] else { return Err("usage: fill <n> <value_size>".into()) };
                let n: u64 = n.parse().map_err(|_| "n must be a number")?;
                let vs: usize = vs.parse().map_err(|_| "value_size must be a number")?;
                let now = self.clock.now();
                let r = dbbench::fillrandom(self.db()?, n, vs, 42, now)?;
                self.clock.advance_to(r.finished);
                let _ = writeln!(
                    out,
                    "filled {} records in {} ({:.2} us/op)",
                    n,
                    r.wall(),
                    r.mean_us_per_op()
                );
            }
            "advance" => {
                let [ms] = args[..] else { return Err("usage: advance <ms>".into()) };
                let ms: u64 = ms.parse().map_err(|_| "ms must be a number")?;
                self.clock.advance(Nanos::from_millis(ms));
                let now = self.clock.now();
                if let Ok(db) = self.db() {
                    db.tick(now)?;
                } else {
                    self.fs.tick(now);
                }
                let _ = writeln!(out, "now {}", self.clock.now());
            }
            "flush" => {
                let now = self.clock.now();
                let t = self.db()?.flush(now)?;
                let _ = writeln!(out, "flushed ({t})");
            }
            "compact" => match args.first().copied() {
                None => {
                    let now = self.clock.now();
                    let t = self.db()?.compact_range(now, None, None)?;
                    let _ = writeln!(out, "compacted ({t})");
                }
                Some("status") => {
                    let now = self.clock.now();
                    let db = self.db()?;
                    let s = db.stats();
                    let _ = writeln!(
                        out,
                        "lanes={} active={} pressure={:.2} debt={} preempt_l0={} backoff={}",
                        db.compaction_lanes(),
                        db.active_majors(),
                        db.l0_pressure(),
                        db.compaction_debt_bytes(),
                        s.l0_preempts,
                        s.lane_backoffs,
                    );
                    let _ = writeln!(
                        out,
                        "stages: read={} merge={} write={}",
                        s.compact_read_time, s.compact_merge_time, s.compact_write_time,
                    );
                    for (i, ls) in db.lane_stats().iter().enumerate() {
                        let idle = if ls.free <= now { "idle" } else { "busy" };
                        let _ = writeln!(
                            out,
                            "lane{i}: jobs={} busy={} bytes={} {idle}",
                            ls.jobs, ls.busy, ls.bytes_written,
                        );
                    }
                }
                Some("lanes") => {
                    let n: usize = args
                        .get(1)
                        .ok_or("usage: compact lanes <n>")?
                        .parse()
                        .map_err(|_| "n must be a number")?;
                    if n == 0 {
                        return Err("n must be at least 1".into());
                    }
                    self.db()?.set_compaction_lanes(n);
                    let _ = writeln!(out, "lanes {n}");
                }
                Some(sub) => return Err(format!("unknown compact subcommand: {sub}").into()),
            },
            "crash" => {
                let pct: u64 = args
                    .first()
                    .map(|p| p.parse().map_err(|_| "percent must be a number"))
                    .transpose()?
                    .unwrap_or(100);
                let at = Nanos::from_nanos(self.clock.now().as_nanos() * pct.min(100) / 100);
                let crashed = self.fs.crashed_view(at);
                let variant = self.variant;
                // A crash rewinds the session to `at`; the shared clock is
                // monotone, so the recovered stack gets a fresh one.
                self.clock = SharedClock::at(at);
                let mut db = variant.open_with_clock(
                    crashed.clone(),
                    "db",
                    &base_options(),
                    self.clock.clone(),
                )?;
                // The crash view is a new stack; the sink and hub survive
                // it so recovery I/O lands in the same trace and the
                // timeline keeps its pre-crash history.
                if let Some(sink) = &self.trace {
                    db.set_trace_sink(sink.clone());
                }
                if let Some(hub) = &self.metrics {
                    db.set_metrics_hub(hub.clone());
                }
                self.fs = crashed;
                self.db = Some(db);
                let _ = writeln!(out, "power failed at {at}; recovered {}", variant.name());
            }
            "levels" => {
                let counts = self.db()?.level_file_counts();
                let _ = writeln!(out, "{counts:?}");
            }
            "stats" => {
                let fs_stats = self.fs.stats();
                let db = self.db()?;
                let s = db.stats();
                let _ = writeln!(
                    out,
                    "writes={} gets={} minor={} major={} stalls={} stall_time={} shadows={}",
                    s.writes,
                    s.gets,
                    s.minor_compactions,
                    s.major_compactions,
                    s.stalls,
                    s.stall_time,
                    s.shadow_files
                );
                let _ = writeln!(
                    out,
                    "syncs={} bytes_synced={} async_commits={} journal_bytes={}",
                    fs_stats.sync_calls,
                    fs_stats.bytes_synced,
                    fs_stats.async_commits,
                    fs_stats.journal_bytes
                );
            }
            "time" => {
                let _ = writeln!(out, "{}", self.clock.now());
            }
            "store" => self.dispatch_store(&args, out)?,
            "repl" => self.dispatch_repl(&args, out)?,
            // Self-contained: runs against its own fresh simulated stack,
            // leaving the session's filesystem and database untouched.
            "chaos" => match args.first().copied() {
                Some("sweep") => {
                    let seeds: u64 = args
                        .get(1)
                        .map(|s| s.parse().map_err(|_| "seeds must be a number".to_string()))
                        .transpose()?
                        .unwrap_or(2);
                    let points: u32 = args
                        .get(2)
                        .map(|s| s.parse().map_err(|_| "points must be a number".to_string()))
                        .transpose()?
                        .unwrap_or(3);
                    let mut spec = nob_chaos::CampaignSpec::smoke();
                    spec.seeds = (1..=seeds.max(1)).collect();
                    let m = points.max(1);
                    spec.crash_points_pm = (1..=m).map(|i| i * 1000 / m).collect();
                    let r = nob_chaos::run_campaign(&spec);
                    let _ = writeln!(
                        out,
                        "chaos sweep: {} cases, {} passed, {} failed, {} undetected values, {} unexplained losses",
                        r.results.len(),
                        r.passed(),
                        r.failed(),
                        r.undetected_total(),
                        r.unexplained_losses()
                    );
                }
                Some(seed) => {
                    let seed: u64 =
                        seed.parse().map_err(|_| "seed must be a number".to_string())?;
                    let crash_pm: u32 = args
                        .get(1)
                        .map(|s| s.parse().map_err(|_| "pm must be a number".to_string()))
                        .transpose()?
                        .unwrap_or(500);
                    let fault_seed: u64 = args
                        .get(2)
                        .map(|s| s.parse().map_err(|_| "fseed must be a number".to_string()))
                        .transpose()?
                        .unwrap_or(seed);
                    let mut case = nob_chaos::ChaosCase::new(seed, 1);
                    case.crash_pm = crash_pm.min(1000);
                    case.plan = nob_chaos::FaultPlan::seeded(fault_seed);
                    let r = nob_chaos::run_case(&case);
                    let _ = writeln!(
                        out,
                        "chaos case seed={seed} crash@{} of {}: {}",
                        r.crash_at,
                        r.run_end,
                        if r.pass { "PASS" } else { "FAIL" }
                    );
                    let _ = writeln!(
                        out,
                        "  injections={} acked={} lost={} explained={} undetected={}",
                        r.injections.len(),
                        r.acked_pairs,
                        r.lost_acked,
                        r.explained,
                        r.undetected_values
                    );
                    let _ = writeln!(
                        out,
                        "  wal_corruptions={} wal_dropped_bytes={} repaired={} ordered_violations={} journal_broken={}",
                        r.wal_corruptions_detected,
                        r.wal_bytes_dropped,
                        r.repaired,
                        r.ordered_violations,
                        r.journal_broken
                    );
                }
                None => return Err(
                    "usage: chaos <seed> [crash_pm] [fault_seed] | chaos sweep [seeds] [points]"
                        .into(),
                ),
            },
            "trace" => match args.first().copied() {
                Some("on") => {
                    let sink = self.trace.get_or_insert_with(TraceSink::new).clone();
                    match self.db.as_mut() {
                        Some(db) => db.set_trace_sink(sink),
                        None => self.fs.set_trace_sink(sink),
                    }
                    let _ = writeln!(out, "tracing on");
                }
                Some("off") => {
                    match self.db.as_mut() {
                        Some(db) => db.clear_trace_sink(),
                        None => self.fs.clear_trace_sink(),
                    }
                    self.trace = None;
                    let _ = writeln!(out, "tracing off");
                }
                Some("summary") => {
                    let sink = self.trace.as_ref().ok_or("tracing is off (use `trace on`)")?;
                    out.push_str(&sink.summary().render());
                }
                Some("stalls") => {
                    let sink = self.trace.as_ref().ok_or("tracing is off (use `trace on`)")?;
                    let s = sink.summary();
                    if s.top_stalls.is_empty() {
                        let _ = writeln!(out, "no write stalls recorded");
                    }
                    for (i, st) in s.top_stalls.iter().enumerate() {
                        let _ = write!(
                            out,
                            "{:>3}. {:<9} {} at t={}",
                            i + 1,
                            st.kind.name(),
                            st.duration(),
                            st.start
                        );
                        for cause in [&st.cause_commit, &st.cause_flush].into_iter().flatten() {
                            let _ = write!(
                                out,
                                "  <- {} #{} [t={}, {}]",
                                cause.class.name(),
                                cause.seq,
                                cause.start,
                                cause.duration()
                            );
                        }
                        let _ = writeln!(out);
                    }
                }
                Some("tree") => {
                    let sink = self.trace.as_ref().ok_or("tracing is off (use `trace on`)")?;
                    match args.get(1) {
                        Some(id) => {
                            let id: u64 =
                                id.parse().map_err(|_| "trace_id must be a number")?;
                            let tree = sink
                                .tree(id)
                                .ok_or_else(|| format!("no recorded trace with id {id}"))?;
                            out.push_str(&tree.render());
                        }
                        None => {
                            let forest = sink.forest();
                            let roots = forest.roots();
                            if roots.is_empty() {
                                let _ = writeln!(out, "no spans recorded");
                            }
                            for root in &roots {
                                if let Some(tree) = forest.tree(root.trace) {
                                    out.push_str(&tree.render());
                                }
                            }
                        }
                    }
                }
                Some("critical") => {
                    let sink = self.trace.as_ref().ok_or("tracing is off (use `trace on`)")?;
                    let top_n: usize = args
                        .get(1)
                        .map(|n| n.parse().map_err(|_| "n must be a number"))
                        .transpose()?
                        .unwrap_or(3);
                    out.push_str(&sink.critical_summary(top_n).render());
                }
                Some("export") => {
                    let sink = self.trace.as_ref().ok_or("tracing is off (use `trace on`)")?;
                    let [_, format, path] = args[..] else {
                        return Err("usage: trace export <json|chrome> <path>".into());
                    };
                    let body = match format {
                        "json" => sink.events_json(),
                        "chrome" => sink.chrome_trace(),
                        other => return Err(format!("unknown export format {other}").into()),
                    };
                    std::fs::write(path, &body).map_err(|e| format!("cannot write {path}: {e}"))?;
                    let _ = writeln!(out, "wrote {path} ({} bytes)", body.len());
                }
                _ => {
                    return Err(
                        "usage: trace on|off|summary|stalls|tree [trace_id]|critical [n]|export <json|chrome> <path>"
                            .into()
                    )
                }
            },
            "metrics" => match args.first().copied() {
                Some("on") => {
                    let hub = self.metrics.get_or_insert_with(MetricsHub::new).clone();
                    match self.db.as_mut() {
                        Some(db) => db.set_metrics_hub(hub),
                        None => self.fs.register_metrics(&hub),
                    }
                    let _ = writeln!(out, "metrics on (period {})", DEFAULT_PERIOD);
                }
                Some("off") => {
                    match self.db.as_mut() {
                        Some(db) => db.clear_metrics_hub(),
                        None => {
                            if let Some(hub) = &self.metrics {
                                Ext4Fs::unregister_metrics(hub);
                            }
                        }
                    }
                    self.metrics = None;
                    let _ = writeln!(out, "metrics off");
                }
                Some("timeline") => {
                    let hub = self.metrics.as_ref().ok_or("metrics are off (use `metrics on`)")?;
                    let tl = hub.timeline();
                    if tl.samples == 0 {
                        let _ = writeln!(out, "no samples yet (advance virtual time first)");
                    } else {
                        out.push_str(&tl.render(64));
                    }
                }
                Some("export") => {
                    let hub = self.metrics.as_ref().ok_or("metrics are off (use `metrics on`)")?;
                    // Accept both `export prom [path]` and the long
                    // `export --format prom [path]` spelling.
                    let rest: Vec<&str> =
                        args[1..].iter().copied().filter(|a| *a != "--format").collect();
                    let (format, path) = match rest[..] {
                        [f] => (f, None),
                        [f, p] => (f, Some(p)),
                        _ => {
                            return Err("usage: metrics export [--format] <prom|json> [path]".into())
                        }
                    };
                    let body = match format {
                        "prom" => hub.timeline().prometheus(),
                        "json" => hub.timeline().to_json(),
                        other => return Err(format!("unknown export format {other}").into()),
                    };
                    match path {
                        Some(p) => {
                            std::fs::write(p, &body)
                                .map_err(|e| format!("cannot write {p}: {e}"))?;
                            let _ = writeln!(out, "wrote {p} ({} bytes)", body.len());
                        }
                        None => out.push_str(&body),
                    }
                }
                None => {
                    let db = self.db.as_ref().ok_or("no database open")?;
                    let table = db
                        .property("noblsm.compaction-stats")
                        .ok_or("property noblsm.compaction-stats unavailable")?;
                    out.push_str(&table);
                    if let Some(stats) = db.property("noblsm.stats") {
                        let _ = writeln!(out, "{stats}");
                    }
                }
                _ => {
                    return Err(
                        "usage: metrics [on|off|timeline|export [--format] <prom|json> [path]]"
                            .into(),
                    )
                }
            },
            "help" => {
                let _ = writeln!(
                    out,
                    "commands: open put get del scan fill advance flush compact [status|lanes <n>] crash chaos trace metrics store repl levels stats time help quit"
                );
            }
            "quit" | "exit" => {}
            other => return Err(format!("unknown command {other} (try `help`)").into()),
        }
        Ok(())
    }

    /// The `store` command family: a sharded group-commit store living
    /// beside the session's single database, on its own stacks.
    fn dispatch_store(&mut self, args: &[&str], out: &mut String) -> Result<(), Error> {
        match args.first().copied() {
            Some("open") => {
                let shards: usize = args
                    .get(1)
                    .ok_or("usage: store open <shards> [mode]")?
                    .parse()
                    .map_err(|_| "shards must be a number")?;
                let variant = parse_variant(args.get(2).copied().unwrap_or("noblsm"))?;
                let mut store = Store::open(StoreOptions {
                    shards,
                    db: variant.options(&base_options()),
                    ..StoreOptions::default()
                })?;
                if let Some(sink) = &self.trace {
                    store.set_trace_sink(sink.clone());
                }
                if let Some(hub) = &self.metrics {
                    store.set_metrics_hub(hub);
                }
                self.store = Some(store);
                let _ = writeln!(out, "store open: {shards} shards of {}", variant.name());
            }
            Some("put") => {
                let [_, k, v] = args[..] else {
                    return Err("usage: store put <key> <value>".into());
                };
                let mut batch = WriteBatch::new();
                batch.put(k.as_bytes(), v.as_bytes());
                let t = self.store()?.write(&WriteOptions::default(), batch)?;
                let _ = writeln!(out, "OK ({t})");
            }
            Some("get") => {
                let [_, k] = args[..] else { return Err("usage: store get <key>".into()) };
                let k = k.as_bytes().to_vec();
                let store = self.store()?;
                let shard = store.shard_of(&k);
                match store.get(&ReadOptions::default(), &k)? {
                    Some(v) => {
                        let _ = writeln!(out, "{} (shard {shard})", String::from_utf8_lossy(&v));
                    }
                    None => {
                        let _ = writeln!(out, "<not found> (shard {shard})");
                    }
                }
            }
            Some("scan") => {
                let [_, start, n, flags @ ..] = args else {
                    return Err("usage: store scan <start> <n> [reverse] [count]".into());
                };
                let n: usize = n.parse().map_err(|_| "n must be a number")?;
                let start = start.as_bytes().to_vec();
                let mut sopts = ScanOptions::starting_at(&start).with_limit(n);
                for f in flags {
                    match *f {
                        "reverse" => sopts = sopts.reversed(),
                        "count" => sopts = sopts.counting(),
                        _ => return Err("usage: store scan <start> <n> [reverse] [count]".into()),
                    }
                }
                let store = self.store()?;
                let r = store.scan(&ReadOptions::default(), &sopts)?;
                let t = store.clock().now();
                for (k, v) in &r.rows {
                    let _ = writeln!(
                        out,
                        "{} = {}",
                        String::from_utf8_lossy(k),
                        String::from_utf8_lossy(v)
                    );
                }
                match &r.resume {
                    Some(next) => {
                        let _ = writeln!(
                            out,
                            "({} rows, more from {}, {t})",
                            r.count,
                            String::from_utf8_lossy(next)
                        );
                    }
                    None => {
                        let _ = writeln!(out, "({} rows, {t})", r.count);
                    }
                }
            }
            Some("fill") => {
                let n: u64 = args
                    .get(1)
                    .ok_or("usage: store fill <n> <value_size> [writers]")?
                    .parse()
                    .map_err(|_| "n must be a number")?;
                let vs: usize = args
                    .get(2)
                    .ok_or("usage: store fill <n> <value_size> [writers]")?
                    .parse()
                    .map_err(|_| "value_size must be a number")?;
                let writers: usize = args
                    .get(3)
                    .map(|w| w.parse().map_err(|_| "writers must be a number"))
                    .transpose()?
                    .unwrap_or(1)
                    .max(1);
                let store = self.store()?;
                let start = store.clock().now();
                // W logical writers each enqueue one single-record batch
                // per round; the pump after each round lets shard leaders
                // coalesce that round's arrivals into groups.
                let mut key_state = 0x9e37_79b9_7f4a_7c15u64;
                let mut i = 0u64;
                while i < n {
                    for _ in 0..writers.min((n - i) as usize) {
                        key_state = key_state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        let mut batch = WriteBatch::new();
                        batch.put(format!("key{:016x}", key_state).as_bytes(), &vec![b'x'; vs]);
                        store.enqueue(&WriteOptions::synced(), &batch);
                        i += 1;
                    }
                    store.pump()?;
                }
                store.drain()?;
                let s = store.stats();
                let wall = store.clock().now() - start;
                let _ = writeln!(
                    out,
                    "store filled {n} records in {wall}: {} groups for {} batches ({:.2} batches/group)",
                    s.groups,
                    s.batches,
                    s.batches as f64 / s.groups.max(1) as f64
                );
            }
            Some("stats") => {
                let store = self.store()?;
                let s = store.stats();
                let _ = writeln!(
                    out,
                    "shards={} groups={} batches={} merged_bytes={} pending={}",
                    store.shards(),
                    s.groups,
                    s.batches,
                    s.merged_bytes,
                    store.pending()
                );
                for i in 0..store.shards() {
                    let _ = writeln!(
                        out,
                        "  shard{i}: levels {:?}",
                        store.shard_db(i).level_file_counts()
                    );
                }
            }
            Some("close") => {
                self.store = None;
                let _ = writeln!(out, "store closed");
            }
            _ => {
                return Err("usage: store open|put|get|scan|fill|stats|close".into());
            }
        }
        Ok(())
    }

    /// The `repl` command family: an in-process leader/follower pair
    /// over the loopback shipping transport, with a resumable changefeed
    /// and promote-and-fence failover — the whole replication stack in a
    /// scriptable shell.
    fn dispatch_repl(&mut self, args: &[&str], out: &mut String) -> Result<(), Error> {
        match args.first().copied() {
            Some("open") => {
                let shards: usize = args
                    .get(1)
                    .map(|s| s.parse().map_err(|_| "shards must be a number"))
                    .transpose()?
                    .unwrap_or(2);
                let opts = StoreOptions { shards, db: base_options(), ..StoreOptions::default() };
                let clock = SharedClock::new();
                let leader = Store::open_with_clock(opts.clone(), clock.clone())?;
                let follower = Store::open_with_clock(opts, clock)?;
                let mut leader = Leader::new(leader, 1);
                let mut follower = Follower::new(follower, 1);
                // The pair shares the session sink, so one traced commit
                // yields a single tree spanning both replicas.
                if let Some(sink) = &self.trace {
                    leader.set_trace_sink(sink.clone());
                    follower.set_trace_sink(sink.clone());
                }
                let core = shared_repl(ReplCore::new(leader));
                let mut link = FollowerLink::new(ReplLoopback::connect(&core), follower);
                link.subscribe()?;
                self.repl = Some(ReplSession { core, link: Some(link), sub: None });
                let _ = writeln!(out, "repl open: {shards} shards, epoch 1, loopback follower");
            }
            Some("put") => {
                let [_, k, v] = args[..] else {
                    return Err("usage: repl put <key> <value>".into());
                };
                let mut batch = WriteBatch::new();
                batch.put(k.as_bytes(), v.as_bytes());
                let t = self
                    .repl()?
                    .core
                    .borrow_mut()
                    .leader_mut()
                    .write(&WriteOptions::default(), batch)?;
                let _ = writeln!(out, "OK ({t})");
            }
            Some("follow") => {
                let r = self.repl()?;
                let link = r
                    .link
                    .as_mut()
                    .ok_or("follower was promoted (use `repl open` for a new pair)")?;
                let applied = link.poll_until_idle()?;
                let _ = writeln!(
                    out,
                    "applied {applied} records; follower at {:?}",
                    link.follower().shard_seqs()
                );
            }
            Some("get") => {
                let k = args.get(1).ok_or("usage: repl get <key> [staleness_ms]")?;
                let ms: u64 = args
                    .get(2)
                    .map(|s| s.parse().map_err(|_| "staleness_ms must be a number"))
                    .transpose()?
                    .unwrap_or(60_000);
                let key = k.as_bytes().to_vec();
                let ropts = ReadOptions::default().with_max_staleness(Nanos::from_millis(ms));
                let r = self.repl()?;
                let link = r
                    .link
                    .as_mut()
                    .ok_or("follower was promoted (use `repl open` for a new pair)")?;
                match link.get(&ropts, &key)? {
                    Some(v) => {
                        let _ = writeln!(
                            out,
                            "{} (follower, bound {ms} ms)",
                            String::from_utf8_lossy(&v)
                        );
                    }
                    None => {
                        let _ = writeln!(out, "<not found> (follower, bound {ms} ms)");
                    }
                }
            }
            Some("subscribe") => {
                let from: Option<u64> = args
                    .get(1)
                    .map(|s| s.parse().map_err(|_| "from_seq must be a number"))
                    .transpose()?;
                let r = self.repl()?;
                let conn = ReplLoopback::connect(&r.core);
                // An explicit sequence starts a fresh feed; otherwise an
                // existing feed resumes from where it left off (across a
                // promotion too — the new leader kept the change log).
                let mut sub = match (r.sub.take(), from) {
                    (_, Some(seq)) => Subscription::start(conn, 0, seq)?,
                    (Some(prev), None) => prev.resume(conn)?,
                    (None, None) => Subscription::start(conn, 0, 1)?,
                };
                let mut n = 0usize;
                loop {
                    let recs = sub.poll()?;
                    if recs.is_empty() {
                        break;
                    }
                    for rec in recs {
                        n += 1;
                        let _ = writeln!(
                            out,
                            "  shard {} seq {}..{} epoch {} ({} payload bytes)",
                            rec.shard,
                            rec.first_seq,
                            rec.last_seq,
                            rec.epoch,
                            rec.payload.len()
                        );
                    }
                }
                let _ = writeln!(out, "changefeed: {n} records, next seq {}", sub.next_seq());
                r.sub = Some(sub);
            }
            Some("promote") => {
                let r = self.repl()?;
                let link = r.link.take().ok_or("follower already promoted")?;
                let new_leader = link.into_follower().promote();
                let epoch = new_leader.epoch();
                r.core.borrow_mut().leader_mut().fence(epoch);
                r.core = shared_repl(ReplCore::new(new_leader));
                let _ = writeln!(out, "promoted follower to epoch {epoch}; old leader fenced");
            }
            Some("status") => {
                let r = self.repl()?;
                {
                    let core = r.core.borrow();
                    let l = core.leader();
                    let _ = writeln!(
                        out,
                        "leader: epoch={} fenced={} seqs={:?} acked={:?} lag={}",
                        l.epoch(),
                        l.fenced(),
                        l.store().shard_seqs(),
                        l.acked_seqs(),
                        l.replication_lag()
                    );
                }
                match &r.link {
                    Some(link) => {
                        let f = link.follower();
                        let seqs = f.shard_seqs();
                        let stale: Vec<String> =
                            (0..seqs.len()).map(|s| f.staleness(s).to_string()).collect();
                        let _ = writeln!(
                            out,
                            "follower: epoch={} seqs={seqs:?} staleness={stale:?}",
                            f.epoch()
                        );
                    }
                    None => {
                        let _ = writeln!(out, "follower: promoted");
                    }
                }
                match &r.sub {
                    Some(sub) => {
                        let _ = writeln!(
                            out,
                            "changefeed: shard {} next seq {}",
                            sub.shard(),
                            sub.next_seq()
                        );
                    }
                    None => {
                        let _ = writeln!(out, "changefeed: none");
                    }
                }
            }
            Some("close") => {
                self.repl = None;
                let _ = writeln!(out, "repl closed");
            }
            _ => {
                return Err("usage: repl open|put|follow|get|subscribe|promote|status|close".into());
            }
        }
        Ok(())
    }
}

/// Parses a variant name shared by `open` and `store open`.
fn parse_variant(mode: &str) -> Result<Variant, Error> {
    match mode {
        "noblsm" => Ok(Variant::NobLsm),
        "leveldb" => Ok(Variant::LevelDb),
        "volatile" => Ok(Variant::VolatileLevelDb),
        "bolt" => Ok(Variant::Bolt),
        "l2sm" => Ok(Variant::L2sm),
        "rocksdb" => Ok(Variant::RocksDb),
        "hyperleveldb" => Ok(Variant::HyperLevelDb),
        "pebblesdb" => Ok(Variant::PebblesDb),
        other => Err(format!("unknown mode {other}").into()),
    }
}

impl Default for Session {
    fn default() -> Self {
        Session::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_del_cycle() {
        let mut s = Session::new();
        let out = s.run_script("open noblsm\nput name noblsm\nget name\ndel name\nget name\n");
        assert!(out.contains("opened NobLSM"));
        assert!(out.contains("name") || out.contains("noblsm"));
        assert!(out.contains("<not found>"));
    }

    #[test]
    fn commands_require_open_db() {
        let mut s = Session::new();
        let out = s.run_line("put a b");
        assert!(out.contains("no database open"), "{out}");
    }

    #[test]
    fn fill_scan_and_levels() {
        let mut s = Session::new();
        let out = s.run_script("open leveldb\nfill 2000 100\nflush\nlevels\nscan 00 3\nstats\n");
        assert!(out.contains("filled 2000 records"));
        assert!(out.contains("rows,"));
        assert!(out.contains("syncs="), "{out}");
    }

    #[test]
    fn crash_recovers_flushed_data() {
        let mut s = Session::new();
        let out =
            s.run_script("open noblsm\nput k persisted\nflush\nadvance 11000\ncrash 100\nget k\n");
        assert!(out.contains("power failed"));
        assert!(out.contains("persisted"), "{out}");
    }

    #[test]
    fn unknown_commands_and_bad_usage_report_errors() {
        let mut s = Session::new();
        assert!(s.run_line("frobnicate").contains("unknown command"));
        let _ = s.run_line("open noblsm");
        assert!(s.run_line("put onlykey").contains("usage: put"));
        assert!(s.run_line("scan a notanumber").contains("must be a number"));
        assert!(s.run_line("open alienDB").contains("unknown mode"));
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let mut s = Session::new();
        let out = s.run_script("# a comment\n\nopen volatile\n# another\ntime\n");
        assert!(out.contains("opened LevelDB-nosync"));
    }

    #[test]
    fn chaos_command_runs_case_and_sweep() {
        let mut s = Session::new();
        let out = s.run_line("chaos 7 600");
        assert!(out.contains("chaos case seed=7"), "{out}");
        assert!(out.contains("PASS") || out.contains("FAIL"));
        let out = s.run_line("chaos sweep 1 2");
        assert!(out.contains("chaos sweep: 8 cases"), "{out}");
        assert!(s.run_line("chaos").contains("usage: chaos"));
    }

    #[test]
    fn trace_records_summarises_and_exports() {
        let dir = std::env::temp_dir().join("nob-cli-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let json = dir.join("spans.json");
        let chrome = dir.join("spans.chrome.json");
        let mut s = Session::new();
        let out = s.run_script(&format!(
            "open leveldb\ntrace on\nfill 2000 100\nflush\ntrace summary\ntrace stalls\n\
             trace export json {}\ntrace export chrome {}\ntrace off\n",
            json.display(),
            chrome.display()
        ));
        assert!(out.contains("tracing on"), "{out}");
        assert!(out.contains("engine_put"), "summary must list engine spans: {out}");
        assert!(out.contains("p999"), "{out}");
        assert!(out.contains("tracing off"));
        let spans = std::fs::read_to_string(&json).unwrap();
        assert!(spans.contains("\"class\""));
        let ct = std::fs::read_to_string(&chrome).unwrap();
        assert!(ct.contains("traceEvents"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trace_survives_a_crash_reopen() {
        let mut s = Session::new();
        let out = s.run_script(
            "open noblsm\ntrace on\nput k v\nflush\nadvance 11000\ncrash 100\nget k\ntrace summary\n",
        );
        assert!(out.contains("power failed"), "{out}");
        // Reads issued after recovery land in the same trace.
        assert!(out.contains("engine_get"), "{out}");
    }

    #[test]
    fn trace_usage_errors_are_reported() {
        let mut s = Session::new();
        assert!(s.run_line("trace summary").contains("tracing is off"));
        assert!(s.run_line("trace tree").contains("tracing is off"));
        assert!(s.run_line("trace critical").contains("tracing is off"));
        assert!(s.run_line("trace").contains("usage: trace"));
        let _ = s.run_line("trace on");
        assert!(s.run_line("trace export json").contains("usage: trace export"));
        assert!(s.run_line("trace export gif /tmp/x").contains("unknown export format"));
        assert!(s.run_line("trace tree notanumber").contains("must be a number"));
        assert!(s.run_line("trace tree 999999").contains("no recorded trace"));
        assert!(s.run_line("trace critical nan").contains("must be a number"));
    }

    #[test]
    fn trace_tree_and_critical_cover_a_replicated_commit() {
        let mut s = Session::new();
        let out = s.run_script(
            "trace on\nrepl open 1\nrepl put alpha 1\nrepl follow\ntrace tree\ntrace critical 1\n",
        );
        // The group commit's tree spans both replicas: engine + journal
        // work under the leader, ship/apply/ack across the link.
        assert!(out.contains("group_commit"), "{out}");
        assert!(out.contains("repl_ship"), "{out}");
        assert!(out.contains("repl_apply"), "{out}");
        assert!(out.contains("repl_ack"), "{out}");
        assert!(out.contains("critical path:"), "{out}");
        assert!(out.contains("slowest 1 requests"), "{out}");
    }

    #[test]
    fn metrics_table_timeline_and_prometheus_export() {
        let dir = std::env::temp_dir().join("nob-cli-metrics-test");
        std::fs::create_dir_all(&dir).unwrap();
        let prom = dir.join("metrics.prom");
        let mut s = Session::new();
        let out = s.run_script(&format!(
            "open noblsm\nmetrics on\nfill 3000 100\nflush\nmetrics\nmetrics timeline\n\
             metrics export --format prom {}\nmetrics export json\nmetrics off\n",
            prom.display()
        ));
        assert!(out.contains("metrics on"), "{out}");
        assert!(out.contains("size(MB)"), "compaction table header: {out}");
        assert!(out.contains("engine.mem_bytes"), "timeline sparklines: {out}");
        assert!(out.contains("\"series\""), "inline json export: {out}");
        assert!(out.contains("metrics off"));
        let text = std::fs::read_to_string(&prom).unwrap();
        assert!(text.contains("# TYPE noblsm_engine_mem_bytes gauge"), "{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn metrics_survive_a_crash_reopen() {
        let mut s = Session::new();
        let out = s.run_script(
            "open noblsm\nmetrics on\nfill 1000 100\nflush\nadvance 11000\ncrash 100\n\
             advance 1000\nmetrics timeline\n",
        );
        assert!(out.contains("power failed"), "{out}");
        // The timeline keeps sampling across the crash reopen.
        assert!(out.contains("engine.mem_bytes"), "{out}");
    }

    #[test]
    fn metrics_usage_errors_are_reported() {
        let mut s = Session::new();
        assert!(s.run_line("metrics timeline").contains("metrics are off"));
        assert!(s.run_line("metrics").contains("no database open"));
        assert!(s.run_line("metrics bogus").contains("usage: metrics"));
        let _ = s.run_line("metrics on");
        assert!(s.run_line("metrics export gif").contains("unknown export format"));
        assert!(s.run_line("metrics export").contains("usage: metrics export"));
    }

    #[test]
    fn store_commands_group_commit_and_read_back() {
        let mut s = Session::new();
        let out = s.run_script(
            "store open 4\nstore put alpha 1\nstore get alpha\nstore fill 200 64 4\n\
             store stats\nstore close\n",
        );
        assert!(out.contains("store open: 4 shards of NobLSM"), "{out}");
        assert!(out.contains("1 (shard"), "{out}");
        assert!(out.contains("store filled 200 records"), "{out}");
        assert!(out.contains("batches/group"), "{out}");
        assert!(out.contains("shards=4"), "{out}");
        assert!(out.contains("store closed"), "{out}");
    }

    #[test]
    fn store_scan_merges_shards_and_pages_with_a_resume_key() {
        let mut s = Session::new();
        let out = s.run_script(
            "store open 4\nstore put b 2\nstore put a 1\nstore put d 4\nstore put c 3\n\
             store scan a 3\nstore scan a 10 count\nstore scan a 10 reverse\n",
        );
        // Three rows from four shards, globally sorted, with the resume
        // key pointing at the truncated remainder.
        assert!(out.contains("a = 1\nb = 2\nc = 3\n(3 rows, more from d,"), "{out}");
        assert!(out.contains("(4 rows,"), "{out}");
        let d = out.find("d = 4").expect("reverse scan emits d");
        let a = out.rfind("a = 1").expect("reverse scan emits a");
        assert!(d < a, "reverse order: {out}");
    }

    #[test]
    fn store_usage_errors_are_reported() {
        let mut s = Session::new();
        assert!(s.run_line("store get k").contains("no store open"), "store get before open");
        assert!(s.run_line("store").contains("usage: store"));
        assert!(s.run_line("store open").contains("usage: store open"));
        assert!(s.run_line("store open 0").contains("at least one shard"));
        assert!(s.run_line("store open 2 alienDB").contains("unknown mode"));
        assert!(s.run_line("store scan").contains("usage: store scan"));
    }

    #[test]
    fn repl_commands_ship_read_subscribe_and_promote() {
        let mut s = Session::new();
        // One shard so the shard-0 changefeed deterministically sees
        // every record regardless of key hashing.
        let out = s.run_script(
            "repl open 1\nrepl put alpha 1\nrepl put beta 2\nrepl follow\nrepl get alpha\n\
             repl subscribe\nrepl status\nrepl promote\nrepl put gamma 3\nrepl subscribe\n\
             repl status\nrepl close\n",
        );
        assert!(out.contains("repl open: 1 shards, epoch 1"), "{out}");
        assert!(out.contains("applied 2 records"), "{out}");
        assert!(out.contains("1 (follower, bound 60000 ms)"), "{out}");
        assert!(out.contains("seq 1..1 epoch 1"), "pre-failover record: {out}");
        assert!(out.contains("seq 2..2 epoch 1"), "{out}");
        assert!(out.contains("promoted follower to epoch 2"), "{out}");
        assert!(out.contains("seq 3..3 epoch 2"), "the resumed feed crosses the failover: {out}");
        assert!(out.contains("leader: epoch=2"), "{out}");
        assert!(out.contains("follower: promoted"), "{out}");
        assert!(out.contains("repl closed"), "{out}");
    }

    #[test]
    fn repl_get_enforces_the_staleness_bound() {
        let mut s = Session::new();
        let out = s.run_script("repl open 1\nrepl put k v\nrepl follow\nrepl get k 0\n");
        // Staleness on the follower is never exactly zero (the ack trails
        // the commit), so a 0 ms bound must be refused.
        assert!(out.contains("error:"), "{out}");
        let out = s.run_line("repl get k 60000");
        assert!(out.contains("v (follower"), "{out}");
    }

    #[test]
    fn repl_usage_errors_are_reported() {
        let mut s = Session::new();
        assert!(s.run_line("repl put a b").contains("no replication pair"));
        assert!(s.run_line("repl").contains("usage: repl"));
        let _ = s.run_line("repl open 1");
        assert!(s.run_line("repl get").contains("usage: repl get"));
        assert!(s.run_line("repl put onlykey").contains("usage: repl put"));
        let _ = s.run_line("repl promote");
        assert!(s.run_line("repl follow").contains("promoted"), "follow after promote");
        assert!(s.run_line("repl promote").contains("already promoted"));
    }

    #[test]
    fn compact_command_runs() {
        let mut s = Session::new();
        let out = s.run_script("open leveldb\nfill 3000 64\ncompact\nlevels\n");
        assert!(out.contains("compacted"));
        // After a full compaction L0 is empty: the levels line starts [0, …
        assert!(out.contains("[0,"), "{out}");
    }
}
