//! The network-facing subcommands of `noblsm-cli`:
//!
//! * `serve --addr <host:port> --shards <n>` — run a `nob-server` TCP
//!   front-end over a sharded store until stopped.
//! * `bench-net --clients <n> --ops <n> [--addr <host:port>]` — a
//!   closed-loop load generator over real sockets: pipelined mixed
//!   GET/SET per client, throughput and the server's `INFO` (which maps
//!   each shard onto [`noblsm::Db::property`]) in the report.
//!
//! Both speak the same wire protocol as any other client; `bench-net`
//! with no `--addr` spins up its own loopback-address server so the
//! command is self-contained.

use std::fmt::Write as _;

use nob_server::{Client, Request, ServerCore, ServerOptions, TcpServer, TcpTransport};
use nob_store::StoreOptions;
use noblsm::Error;

/// Binds a serving stack: `shards` hash-partitioned engines behind one
/// group-commit front-end listening on `addr`.
///
/// # Errors
///
/// Fails if the address cannot be bound or a shard cannot open.
pub fn serve(addr: &str, shards: usize) -> Result<TcpServer, Error> {
    let opts = ServerOptions {
        store: StoreOptions { shards, ..StoreOptions::default() },
        ..ServerOptions::default()
    };
    TcpServer::bind(addr, opts)
}

/// How many requests a bench client keeps in flight before pulling
/// replies. Must stay under the server's per-connection pipeline cap
/// (with headroom for the SET+GET pairs), or deep runs get `-BUSY`.
const PIPELINE_WINDOW: usize = 64;

/// Closed-loop TCP load: `clients` connections each issue `ops /
/// clients` SET requests (values of `value_size` bytes) with a
/// read-back GET every eighth op, pipelined up to `PIPELINE_WINDOW`
/// deep, then the server's `INFO` section is appended to the report.
/// With `addr: None` an in-process server on an ephemeral port is used
/// and gracefully drained afterwards.
///
/// # Errors
///
/// Propagates bind, connect and protocol errors.
pub fn bench_net(
    addr: Option<&str>,
    clients: usize,
    ops: u64,
    value_size: usize,
) -> Result<String, Error> {
    let clients = clients.max(1);
    let own_server = match addr {
        Some(_) => None,
        None => Some(serve("127.0.0.1:0", 2)?),
    };
    let target = match (&own_server, addr) {
        (Some(s), _) => s.local_addr().to_string(),
        (None, Some(a)) => a.to_string(),
        (None, None) => unreachable!("either an address or an own server"),
    };

    let per_client = (ops / clients as u64).max(1);
    let started = std::time::Instant::now();
    let workers: Vec<_> = (0..clients)
        .map(|cid| {
            let target = target.clone();
            std::thread::spawn(move || -> Result<(), Error> {
                let pull = |c: &mut Client<TcpTransport>| -> Result<(), Error> {
                    let reply = c.recv_reply()?;
                    if reply.is_error() {
                        return Err(Error::Usage(format!("server rejected a request: {reply:?}")));
                    }
                    Ok(())
                };
                let mut c = Client::new(TcpTransport::connect(&target)?);
                for i in 0..per_client {
                    while c.outstanding() >= PIPELINE_WINDOW {
                        pull(&mut c)?;
                    }
                    let key = format!("bench-c{cid}-k{i}").into_bytes();
                    let value = vec![b'x'; value_size.max(1)];
                    c.send(&Request::Set(key.clone(), value))?;
                    if i % 8 == 7 {
                        c.send(&Request::Get(key))?;
                    }
                }
                while c.outstanding() > 0 {
                    pull(&mut c)?;
                }
                Ok(())
            })
        })
        .collect();
    let mut failures = Vec::new();
    for (cid, w) in workers.into_iter().enumerate() {
        match w.join() {
            Ok(Ok(())) => {}
            Ok(Err(e)) => failures.push(format!("client {cid}: {e}")),
            Err(_) => failures.push(format!("client {cid}: panicked")),
        }
    }
    let elapsed = started.elapsed();

    let total = per_client * clients as u64;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "bench-net: {clients} clients x {per_client} ops = {total} SET requests in {:.3}s \
         ({:.0} req/s wall-clock)",
        elapsed.as_secs_f64(),
        total as f64 / elapsed.as_secs_f64().max(1e-9),
    );
    for f in &failures {
        let _ = writeln!(out, "FAILED {f}");
    }

    // One more connection pulls INFO so the report carries the server's
    // own counters (and each shard's `noblsm.stats` property line).
    let mut probe = Client::new(TcpTransport::connect(&target)?);
    out.push_str(&probe.info()?);
    drop(probe);

    if let Some(server) = own_server {
        let core: ServerCore = server.shutdown()?;
        let stats = core.store().stats();
        let _ = writeln!(
            out,
            "drained: {} groups for {} batches ({:.2} batches/group)",
            stats.groups,
            stats.batches,
            stats.batches as f64 / stats.groups.max(1) as f64
        );
    }
    if failures.is_empty() {
        Ok(out)
    } else {
        Err(Error::Usage(format!("bench-net had failures:\n{out}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_net_self_contained_run_reports_throughput_and_info() {
        let report = bench_net(None, 4, 160, 64).expect("bench-net runs");
        assert!(report.contains("4 clients x 40 ops = 160 SET requests"), "{report}");
        assert!(report.contains("# server"), "INFO section present: {report}");
        assert!(report.contains("noblsm.stats:"), "per-shard property line: {report}");
        assert!(report.contains("batches/group"), "{report}");
        assert!(!report.contains("FAILED"), "{report}");
    }

    #[test]
    fn bench_net_runs_deeper_than_the_server_pipeline_cap() {
        // 600 ops on one connection far exceeds the per-connection
        // pipeline cap; the window must keep the client under it.
        let report = bench_net(None, 1, 600, 16).expect("windowed bench-net runs");
        assert!(report.contains("1 clients x 600 ops"), "{report}");
        assert!(!report.contains("FAILED"), "{report}");
        assert!(report.contains("busy_rejections:0"), "no BUSY pushback: {report}");
    }

    #[test]
    fn bench_net_against_an_external_server() {
        let server = serve("127.0.0.1:0", 4).expect("bind");
        let addr = server.local_addr().to_string();
        let report = bench_net(Some(&addr), 2, 32, 32).expect("bench-net runs");
        assert!(report.contains("2 clients x 16 ops"), "{report}");
        // An external server is left running for the caller to stop.
        server.shutdown().expect("graceful shutdown");
    }

    #[test]
    fn serve_rejects_unbindable_addresses() {
        assert!(serve("256.0.0.1:notaport", 2).is_err());
    }
}
