//! `nob-metrics`: cross-layer gauge timelines on the virtual clock.
//!
//! The trace layer (`nob-trace`) records *events* — spans with a start and
//! an end. This crate records *state*: each layer registers live gauge
//! closures (or pushes values it alone can compute), and a sampler
//! snapshots every metric on one shared virtual-time grid into a compact
//! [`Timeline`]. The timeline serializes to deterministic JSON, renders as
//! ASCII sparklines, and exposes its latest sample in Prometheus text
//! format.
//!
//! Like tracing, metrics are observation, not behaviour: a [`MetricsHub`]
//! hangs off each layer as an `Option<_>` hook, the disabled path is one
//! branch, and sampling never advances virtual time.
//!
//! ```
//! use nob_metrics::{MetricKind, MetricsHub};
//! use nob_sim::Nanos;
//!
//! let hub = MetricsHub::new().with_period(Nanos::from_millis(10));
//! hub.register(MetricKind::Gauge, "demo.queue_ns", "queue backlog", |t| {
//!     t.as_nanos() as f64 / 2.0
//! });
//! hub.sample_due(Nanos::ZERO, &[("demo.pushed", 7.0)]);
//! hub.sample_due(Nanos::from_millis(25), &[("demo.pushed", 9.0)]);
//! let tl = hub.timeline();
//! assert_eq!(tl.samples, 3); // grid instants 0ms, 10ms, 20ms
//! assert!(tl.to_json().contains("\"demo.queue_ns\""));
//! ```

use std::fmt::Write as _;
use std::sync::{Arc, Mutex, MutexGuard};

use nob_sim::Nanos;

/// Default sampling period: 100 ms of virtual time.
pub const DEFAULT_PERIOD: Nanos = Nanos::from_millis(100);

/// What a metric's values mean, LevelDB/Prometheus style.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically non-decreasing count (ops, bytes, stall time).
    Counter,
    /// Instantaneous level that can go up and down (dirty bytes, queue depth).
    Gauge,
}

impl MetricKind {
    /// Lower-case name, as used in JSON and Prometheus `# TYPE` lines.
    pub fn name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
        }
    }
}

/// One sampled metric: its identity plus one value per grid instant.
#[derive(Debug, Clone)]
pub struct Series {
    /// Dotted metric name, `<layer>.<metric>` (e.g. `ext4.dirty_bytes`).
    pub name: String,
    /// Counter or gauge.
    pub kind: MetricKind,
    /// One-line human description (Prometheus `# HELP`).
    pub help: String,
    /// One value per grid instant, aligned across all series.
    pub values: Vec<f64>,
}

impl Series {
    /// Latest sampled value, or 0.0 before the first sample.
    pub fn last(&self) -> f64 {
        self.values.last().copied().unwrap_or(0.0)
    }
}

/// A compact grid of samples: every registered metric, one value per
/// virtual-time grid instant. All series have the same length
/// ([`Timeline::samples`]); grid instant `i` is `start + period * i`.
#[derive(Debug, Clone)]
pub struct Timeline {
    /// First grid instant.
    pub start: Nanos,
    /// Grid spacing in virtual time.
    pub period: Nanos,
    /// Number of grid instants sampled so far.
    pub samples: usize,
    /// Per-metric sample vectors, in registration/first-push order.
    pub series: Vec<Series>,
}

impl Timeline {
    fn new(period: Nanos) -> Timeline {
        Timeline { start: Nanos::ZERO, period, samples: 0, series: Vec::new() }
    }

    /// Looks up a series by name.
    pub fn series(&self, name: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.name == name)
    }

    /// The grid instant of sample index `i`.
    pub fn instant(&self, i: usize) -> Nanos {
        self.start + self.period * i as u64
    }

    /// Grid index covering instant `t` (clamped to the sampled range), or
    /// `None` if nothing has been sampled yet. Used to cross-reference
    /// trace records (stalls, commits) onto the timeline.
    pub fn grid_index(&self, t: Nanos) -> Option<usize> {
        if self.samples == 0 || self.period == Nanos::ZERO {
            return None;
        }
        let off = t.saturating_sub(self.start).as_nanos() / self.period.as_nanos();
        Some((off as usize).min(self.samples - 1))
    }

    /// Deterministic JSON document. All structural numbers are integers;
    /// sample values print as integers when integral and via Rust's
    /// shortest-round-trip `f64` formatting otherwise, so byte equality
    /// across identical fixed-seed runs is meaningful.
    pub fn to_json(&self) -> String {
        self.to_json_indented(0)
    }

    /// [`Timeline::to_json`] indented by `level` two-space stops, for
    /// embedding into a larger hand-rolled document.
    pub fn to_json_indented(&self, level: usize) -> String {
        let pad = "  ".repeat(level);
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "{pad}  \"start_ns\": {},", self.start.as_nanos());
        let _ = writeln!(out, "{pad}  \"period_ns\": {},", self.period.as_nanos());
        let _ = writeln!(out, "{pad}  \"samples\": {},", self.samples);
        let _ = writeln!(out, "{pad}  \"series\": [");
        for (i, s) in self.series.iter().enumerate() {
            let _ = write!(
                out,
                "{pad}    {{\"name\": \"{}\", \"kind\": \"{}\", \"help\": \"{}\", \"values\": [",
                escape(&s.name),
                s.kind.name(),
                escape(&s.help)
            );
            for (j, v) in s.values.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&fmt_value(*v));
            }
            out.push_str("]}");
            out.push_str(if i + 1 < self.series.len() { ",\n" } else { "\n" });
        }
        let _ = writeln!(out, "{pad}  ]");
        let _ = write!(out, "{pad}}}");
        out
    }

    /// Renders every series as an ASCII sparkline, one row per metric,
    /// scaled per-series to its own min..max. `width` caps the number of
    /// glyphs; longer timelines are bucketed (each glyph shows the bucket
    /// maximum, so short spikes stay visible).
    pub fn render(&self, width: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "timeline: {} samples x {} series, period {}, span {}",
            self.samples,
            self.series.len(),
            self.period,
            self.period * self.samples.saturating_sub(1) as u64,
        );
        let name_w = self.series.iter().map(|s| s.name.len()).max().unwrap_or(0);
        for s in &self.series {
            let _ = writeln!(
                out,
                "  {:name_w$}  {}  [{} .. {}]",
                s.name,
                sparkline(&s.values, width),
                fmt_value(min_of(&s.values)),
                fmt_value(max_of(&s.values)),
            );
        }
        out
    }

    /// Prometheus text exposition of the *latest* sample of every series:
    /// `# HELP` / `# TYPE` headers plus one `noblsm_<name> <value>` line
    /// each, dots and dashes mapped to underscores.
    pub fn prometheus(&self) -> String {
        let mut out = String::new();
        for s in &self.series {
            let name = prom_name(&s.name);
            let _ = writeln!(out, "# HELP {name} {}", prom_help(&s.help));
            let _ = writeln!(out, "# TYPE {name} {}", s.kind.name());
            let _ = writeln!(out, "{name} {}", fmt_value(s.last()));
        }
        out
    }
}

/// `# HELP` text per the exposition format: backslash and line feed are
/// the only escapes (a raw newline would start a bogus exposition line).
fn prom_help(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// `noblsm_`-prefixed Prometheus metric name: dots and dashes become
/// underscores, anything else non-alphanumeric is dropped.
pub fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 7);
    out.push_str("noblsm_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else if c == '.' || c == '-' {
            out.push('_');
        }
    }
    out
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Deterministic value formatting: integers print without a fraction,
/// everything else uses Rust's shortest-round-trip `f64` display.
fn fmt_value(v: f64) -> String {
    if v.is_finite() && v.fract() == 0.0 && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn min_of(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().copied().fold(f64::INFINITY, f64::min)
}

fn max_of(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

/// One sparkline over `values`, at most `width` glyphs wide. Longer inputs
/// are bucketed; each glyph shows its bucket's maximum.
pub fn sparkline(values: &[f64], width: usize) -> String {
    const GLYPHS: [char; 8] = [
        '\u{2581}', '\u{2582}', '\u{2583}', '\u{2584}', '\u{2585}', '\u{2586}', '\u{2587}',
        '\u{2588}',
    ];
    if values.is_empty() || width == 0 {
        return String::new();
    }
    let buckets = width.min(values.len());
    let mut maxima = Vec::with_capacity(buckets);
    for b in 0..buckets {
        let lo = b * values.len() / buckets;
        let hi = ((b + 1) * values.len() / buckets).max(lo + 1);
        maxima.push(values[lo..hi].iter().copied().fold(f64::NEG_INFINITY, f64::max));
    }
    let lo = maxima.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = maxima.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = hi - lo;
    maxima
        .iter()
        .map(|&v| {
            if !v.is_finite() || span <= 0.0 {
                GLYPHS[0]
            } else {
                let idx = ((v - lo) / span * 7.0).round() as usize;
                GLYPHS[idx.min(7)]
            }
        })
        .collect()
}

type ProbeFn = Box<dyn Fn(Nanos) -> f64 + Send>;

struct Probe {
    name: String,
    kind: MetricKind,
    help: String,
    read: ProbeFn,
}

struct HubState {
    period: Nanos,
    /// Next grid instant to sample; `None` until the first `sample_due`.
    next: Option<Nanos>,
    probes: Vec<Probe>,
    timeline: Timeline,
}

impl HubState {
    fn series_index(&mut self, name: &str, kind: MetricKind, help: &str) -> usize {
        if let Some(i) = self.timeline.series.iter().position(|s| s.name == name) {
            return i;
        }
        // A series born mid-run backfills zeros so the grid stays shared.
        self.timeline.series.push(Series {
            name: name.to_string(),
            kind,
            help: help.to_string(),
            values: vec![0.0; self.timeline.samples],
        });
        self.timeline.series.len() - 1
    }

    fn sample_at(&mut self, t: Nanos, pushed: &[(&str, f64)]) {
        for p in 0..self.probes.len() {
            let v = (self.probes[p].read)(t);
            let (name, kind) = (self.probes[p].name.clone(), self.probes[p].kind);
            let help = self.probes[p].help.clone();
            let i = self.series_index(&name, kind, &help);
            self.timeline.series[i].values.push(v);
        }
        for &(name, v) in pushed {
            let i = self.series_index(name, MetricKind::Gauge, "");
            self.timeline.series[i].values.push(v);
        }
        self.timeline.samples += 1;
        // Series absent this round (e.g. a probe unregistered by a crash)
        // repeat their last value to stay grid-aligned.
        for s in &mut self.timeline.series {
            if s.values.len() < self.timeline.samples {
                let fill = s.values.last().copied().unwrap_or(0.0);
                s.values.push(fill);
            }
        }
    }
}

/// Cloneable handle to a shared metric registry + virtual-time sampler.
///
/// Layers that can be captured by a closure (the filesystem and device,
/// which live behind `Arc`s) call [`MetricsHub::register`]; the engine,
/// which owns its state directly, pushes its gauges as the `pushed`
/// argument of [`MetricsHub::sample_due`]. Both land on the same grid.
///
/// A handle may carry a name prefix (see [`MetricsHub::scoped`]): every
/// name it registers, unregisters, or pushes is prefixed transparently,
/// which is how N shards share one hub without their fixed gauge names
/// (`ext4.dirty_bytes`, `engine.writes`, …) colliding.
#[derive(Clone)]
pub struct MetricsHub {
    inner: Arc<Mutex<HubState>>,
    /// Prepended to every metric name this handle touches ("" = none).
    prefix: Arc<str>,
}

impl Default for MetricsHub {
    fn default() -> MetricsHub {
        MetricsHub { inner: Arc::default(), prefix: Arc::from("") }
    }
}

impl Default for HubState {
    fn default() -> HubState {
        HubState {
            period: DEFAULT_PERIOD,
            next: None,
            probes: Vec::new(),
            timeline: Timeline::new(DEFAULT_PERIOD),
        }
    }
}

impl std::fmt::Debug for MetricsHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("MetricsHub")
    }
}

impl MetricsHub {
    /// A hub with the default 100 ms virtual sampling period.
    pub fn new() -> MetricsHub {
        MetricsHub::default()
    }

    /// Sets the sampling period. Call before the first sample; changing
    /// the period re-labels the grid of any samples already taken.
    pub fn with_period(self, period: Nanos) -> MetricsHub {
        {
            let mut st = self.lock();
            assert!(period > Nanos::ZERO, "sampling period must be positive");
            st.period = period;
            st.timeline.period = period;
        }
        self
    }

    /// The configured sampling period.
    pub fn period(&self) -> Nanos {
        self.lock().period
    }

    fn lock(&self) -> MutexGuard<'_, HubState> {
        // Metrics must never take the database down: recover from a
        // poisoned lock (a panicking sampler thread) instead of cascading.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// A handle over the same registry and grid whose metric names are
    /// all prefixed with `prefix` (conventionally ending in `.`, e.g.
    /// `"shard0."`). Scopes nest: `hub.scoped("a.").scoped("b.")`
    /// prefixes `a.b.`. The layers underneath keep registering their
    /// fixed names — the prefix is applied inside the hub, so per-shard
    /// stacks need no code changes.
    pub fn scoped(&self, prefix: &str) -> MetricsHub {
        MetricsHub {
            inner: Arc::clone(&self.inner),
            prefix: format!("{}{prefix}", self.prefix).into(),
        }
    }

    /// The name prefix this handle applies ("" for an unscoped hub).
    pub fn prefix(&self) -> &str {
        &self.prefix
    }

    fn full_name(&self, name: &str) -> String {
        format!("{}{name}", self.prefix)
    }

    /// Registers (or replaces, by name) a live probe evaluated at every
    /// grid instant. The closure receives the grid instant, so
    /// time-derived gauges (queue backlog, busy fraction) stay exact even
    /// when several due instants are sampled in one call.
    pub fn register<F>(&self, kind: MetricKind, name: &str, help: &str, read: F)
    where
        F: Fn(Nanos) -> f64 + Send + 'static,
    {
        let name = self.full_name(name);
        let mut st = self.lock();
        let probe =
            Probe { name: name.clone(), kind, help: help.to_string(), read: Box::new(read) };
        match st.probes.iter().position(|p| p.name == name) {
            // Re-registration (e.g. after crash recovery reopens the same
            // stack) swaps the closure but keeps the series history.
            Some(i) => st.probes[i] = probe,
            None => st.probes.push(probe),
        }
    }

    /// Removes a probe by name; its series stops growing but keeps its
    /// history (grid alignment pads it with its last value).
    pub fn unregister(&self, name: &str) {
        let name = self.full_name(name);
        let mut st = self.lock();
        st.probes.retain(|p| p.name != name);
    }

    /// Samples every grid instant that is due at virtual time `now`:
    /// evaluates all registered probes at each instant and appends the
    /// caller's `pushed` values alongside. The first call anchors the grid
    /// at `now`. Returns how many grid instants were sampled.
    pub fn sample_due(&self, now: Nanos, pushed: &[(&str, f64)]) -> usize {
        // Scoped handles prefix pushed names too; the unscoped path stays
        // allocation-free.
        if !self.prefix.is_empty() {
            let named: Vec<(String, f64)> =
                pushed.iter().map(|&(n, v)| (self.full_name(n), v)).collect();
            let borrowed: Vec<(&str, f64)> = named.iter().map(|(n, v)| (n.as_str(), *v)).collect();
            return self.sample_due_raw(now, &borrowed);
        }
        self.sample_due_raw(now, pushed)
    }

    fn sample_due_raw(&self, now: Nanos, pushed: &[(&str, f64)]) -> usize {
        let mut st = self.lock();
        if st.next.is_none() {
            st.next = Some(now);
            st.timeline.start = now;
        }
        let mut taken = 0;
        while let Some(t) = st.next {
            if t > now {
                break;
            }
            st.sample_at(t, pushed);
            st.next = Some(t + st.period);
            taken += 1;
        }
        taken
    }

    /// Snapshot of the timeline accumulated so far.
    pub fn timeline(&self) -> Timeline {
        self.lock().timeline.clone()
    }

    /// Number of grid instants sampled so far.
    pub fn samples(&self) -> usize {
        self.lock().timeline.samples
    }

    /// Drops all samples (series definitions and probes survive).
    pub fn reset(&self) {
        let mut st = self.lock();
        st.next = None;
        let period = st.period;
        st.timeline = Timeline::new(period);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_anchored_at_first_sample_and_spaced_by_period() {
        let hub = MetricsHub::new().with_period(Nanos::from_millis(10));
        hub.register(MetricKind::Gauge, "t_ms", "grid instant in ms", |t| t.as_millis() as f64);
        assert_eq!(hub.sample_due(Nanos::from_millis(5), &[]), 1);
        assert_eq!(hub.sample_due(Nanos::from_millis(36), &[]), 3);
        let tl = hub.timeline();
        assert_eq!(tl.start, Nanos::from_millis(5));
        assert_eq!(tl.samples, 4);
        // Probes see the grid instant, not the call instant.
        assert_eq!(tl.series("t_ms").unwrap().values, vec![5.0, 15.0, 25.0, 35.0]);
    }

    #[test]
    fn pushed_values_land_on_the_same_grid() {
        let hub = MetricsHub::new().with_period(Nanos::from_millis(10));
        hub.register(MetricKind::Gauge, "probe", "", |_| 1.0);
        hub.sample_due(Nanos::ZERO, &[("pushed", 41.0)]);
        hub.sample_due(Nanos::from_millis(10), &[("pushed", 42.0)]);
        let tl = hub.timeline();
        assert_eq!(tl.series("probe").unwrap().values.len(), 2);
        assert_eq!(tl.series("pushed").unwrap().values, vec![41.0, 42.0]);
    }

    #[test]
    fn late_series_backfills_and_absent_series_repeats() {
        let hub = MetricsHub::new().with_period(Nanos::from_millis(10));
        hub.register(MetricKind::Gauge, "early", "", |_| 1.0);
        hub.sample_due(Nanos::ZERO, &[]);
        hub.register(MetricKind::Counter, "late", "", |_| 2.0);
        hub.sample_due(Nanos::from_millis(10), &[]);
        hub.unregister("early");
        hub.sample_due(Nanos::from_millis(20), &[]);
        let tl = hub.timeline();
        assert_eq!(tl.series("late").unwrap().values, vec![0.0, 2.0, 2.0]);
        assert_eq!(tl.series("early").unwrap().values, vec![1.0, 1.0, 1.0]);
        assert_eq!(tl.series("late").unwrap().kind, MetricKind::Counter);
    }

    #[test]
    fn reregistration_replaces_the_closure_but_keeps_history() {
        let hub = MetricsHub::new().with_period(Nanos::from_millis(10));
        hub.register(MetricKind::Gauge, "g", "", |_| 1.0);
        hub.sample_due(Nanos::ZERO, &[]);
        hub.register(MetricKind::Gauge, "g", "", |_| 9.0);
        hub.sample_due(Nanos::from_millis(10), &[]);
        assert_eq!(hub.timeline().series("g").unwrap().values, vec![1.0, 9.0]);
    }

    #[test]
    fn json_is_deterministic_and_integer_friendly() {
        let mk = || {
            let hub = MetricsHub::new().with_period(Nanos::from_millis(10));
            hub.register(MetricKind::Gauge, "a.b", "bytes", |t| t.as_nanos() as f64);
            hub.register(MetricKind::Counter, "c", "", |_| 0.5);
            hub.sample_due(Nanos::from_millis(7), &[("p", 3.0)]);
            hub.sample_due(Nanos::from_millis(17), &[("p", 4.0)]);
            hub.timeline().to_json()
        };
        let (j1, j2) = (mk(), mk());
        assert_eq!(j1, j2, "identical runs must serialize byte-identically");
        assert!(j1.contains("\"period_ns\": 10000000"));
        assert!(j1.contains("[7000000, 17000000]"), "{j1}");
        assert!(j1.contains("[0.5, 0.5]"), "{j1}");
    }

    #[test]
    fn grid_index_maps_instants_onto_samples() {
        let hub = MetricsHub::new().with_period(Nanos::from_millis(10));
        hub.register(MetricKind::Gauge, "g", "", |_| 0.0);
        hub.sample_due(Nanos::from_millis(55), &[]); // start = 55ms
        hub.sample_due(Nanos::from_millis(85), &[]); // samples at 55,65,75,85
        let tl = hub.timeline();
        assert_eq!(tl.grid_index(Nanos::from_millis(55)), Some(0));
        assert_eq!(tl.grid_index(Nanos::from_millis(64)), Some(0));
        assert_eq!(tl.grid_index(Nanos::from_millis(66)), Some(1));
        assert_eq!(tl.grid_index(Nanos::from_millis(500)), Some(3), "clamped to range");
        assert_eq!(tl.grid_index(Nanos::ZERO), Some(0), "before start clamps to 0");
        assert_eq!(Timeline::new(DEFAULT_PERIOD).grid_index(Nanos::ZERO), None);
    }

    #[test]
    fn prometheus_exposition_is_well_formed() {
        let hub = MetricsHub::new();
        hub.register(MetricKind::Counter, "engine.writes", "user writes", |_| 12.0);
        hub.register(MetricKind::Gauge, "ssd.busy-permille", "", |_| 1.5);
        hub.sample_due(Nanos::ZERO, &[]);
        let text = hub.timeline().prometheus();
        assert!(text.contains("# HELP noblsm_engine_writes user writes\n"));
        assert!(text.contains("# TYPE noblsm_engine_writes counter\n"));
        assert!(text.contains("\nnoblsm_engine_writes 12\n"));
        assert!(text.contains("noblsm_ssd_busy_permille 1.5\n"));
        // Every non-comment line is `name value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.split(' ');
            let name = parts.next().unwrap();
            assert!(name.starts_with("noblsm_"), "{line}");
            assert!(parts.next().unwrap().parse::<f64>().is_ok(), "{line}");
            assert!(parts.next().is_none(), "{line}");
        }
    }

    #[test]
    fn sparkline_buckets_and_scales() {
        assert_eq!(sparkline(&[], 10), "");
        assert_eq!(sparkline(&[5.0], 10), "\u{2581}", "flat series renders low");
        let line = sparkline(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0], 8);
        assert_eq!(line, "\u{2581}\u{2582}\u{2583}\u{2584}\u{2585}\u{2586}\u{2587}\u{2588}");
        // Bucketing keeps spikes: 16 values into 4 glyphs, spike survives.
        let mut v = vec![0.0; 16];
        v[5] = 100.0;
        let line = sparkline(&v, 4);
        assert_eq!(line.chars().filter(|&c| c == '\u{2588}').count(), 1);
    }

    #[test]
    fn render_lists_every_series() {
        let hub = MetricsHub::new().with_period(Nanos::from_millis(10));
        hub.register(MetricKind::Gauge, "a", "", |t| t.as_millis() as f64);
        hub.sample_due(Nanos::from_millis(30), &[("b.long_name", 2.0)]);
        let text = hub.timeline().render(32);
        assert!(text.contains("a "), "{text}");
        assert!(text.contains("b.long_name"), "{text}");
        assert!(text.contains("1 samples x 2 series"), "{text}");
    }

    #[test]
    fn reset_drops_samples_but_keeps_probes() {
        let hub = MetricsHub::new().with_period(Nanos::from_millis(10));
        hub.register(MetricKind::Gauge, "g", "", |_| 1.0);
        hub.sample_due(Nanos::ZERO, &[]);
        hub.reset();
        assert_eq!(hub.samples(), 0);
        hub.sample_due(Nanos::from_secs(1), &[]);
        let tl = hub.timeline();
        assert_eq!(tl.start, Nanos::from_secs(1), "grid re-anchors after reset");
        assert_eq!(tl.series("g").unwrap().values, vec![1.0]);
    }

    #[test]
    fn scoped_handles_prefix_probes_and_pushed_values() {
        let hub = MetricsHub::new().with_period(Nanos::from_millis(10));
        let s0 = hub.scoped("shard0.");
        let s1 = hub.scoped("shard1.");
        s0.register(MetricKind::Gauge, "ext4.dirty_bytes", "", |_| 10.0);
        s1.register(MetricKind::Gauge, "ext4.dirty_bytes", "", |_| 20.0);
        s0.sample_due(Nanos::ZERO, &[("engine.writes", 3.0)]);
        let tl = hub.timeline();
        assert_eq!(tl.series("shard0.ext4.dirty_bytes").unwrap().values, vec![10.0]);
        assert_eq!(tl.series("shard1.ext4.dirty_bytes").unwrap().values, vec![20.0]);
        assert_eq!(tl.series("shard0.engine.writes").unwrap().values, vec![3.0]);
        assert!(tl.series("ext4.dirty_bytes").is_none(), "no unscoped collision");
        // Unregister through the same scope removes only that shard's probe.
        s0.unregister("ext4.dirty_bytes");
        s0.sample_due(Nanos::from_millis(10), &[]);
        let tl = hub.timeline();
        assert_eq!(tl.series("shard1.ext4.dirty_bytes").unwrap().values, vec![20.0, 20.0]);
        // Scopes nest and report their prefix.
        assert_eq!(hub.scoped("a.").scoped("b.").prefix(), "a.b.");
    }

    #[test]
    fn prom_name_sanitizes() {
        assert_eq!(prom_name("ext4.dirty_bytes"), "noblsm_ext4_dirty_bytes");
        assert_eq!(prom_name("l0-stop"), "noblsm_l0_stop");
        assert_eq!(prom_name("weird name!"), "noblsm_weirdname");
    }
}

/// Property tests for the two text formats a hostile metric name or help
/// string could corrupt: the JSON document (quote/backslash/control
/// escaping) and the Prometheus exposition (line structure, metric-name
/// validity, `# HELP` escaping).
#[cfg(test)]
mod format_properties {
    use super::*;
    use proptest::prelude::*;

    /// Maps raw bytes onto a charset chosen to stress every escaping
    /// path: JSON escapes, exposition escapes, name sanitisation,
    /// controls and multi-byte unicode.
    fn hostile(bytes: Vec<u8>) -> String {
        const CHARSET: [char; 22] = [
            '"',
            '\\',
            '\n',
            '\r',
            '\t',
            '\u{0}',
            '\u{1f}',
            ' ',
            '!',
            '#',
            '.',
            '-',
            '/',
            '{',
            '}',
            'a',
            'Z',
            '9',
            '_',
            '\u{e9}',
            '\u{1f980}',
            'x',
        ];
        bytes.into_iter().map(|b| CHARSET[b as usize % CHARSET.len()]).collect()
    }

    /// Inverse of [`escape`], strict: rejects anything but the exact
    /// escape forms the encoder emits.
    fn unescape(e: &str) -> Option<String> {
        let chars: Vec<char> = e.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            if (c as u32) < 0x20 || c == '"' {
                return None; // raw control or quote: not a clean string
            }
            if c == '\\' {
                i += 1;
                match chars.get(i)? {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    'n' => out.push('\n'),
                    'u' => {
                        let hex: String = chars.get(i + 1..i + 5)?.iter().collect();
                        out.push(char::from_u32(u32::from_str_radix(&hex, 16).ok()?)?);
                        i += 4;
                    }
                    _ => return None,
                }
            } else {
                out.push(c);
            }
            i += 1;
        }
        Some(out)
    }

    proptest! {
        /// JSON string escaping is clean (no raw quotes or controls, no
        /// dangling or unknown escapes) and lossless.
        #[test]
        fn json_escape_round_trips_and_stays_clean(
            bytes in proptest::collection::vec(any::<u8>(), 0..64),
        ) {
            let s = hostile(bytes);
            let e = escape(&s);
            let decoded = unescape(&e);
            prop_assert_eq!(decoded, Some(s), "escape output was not clean: {:?}", e);
        }

        /// Sanitised metric names are always valid Prometheus names, no
        /// matter what the layer called its metric.
        #[test]
        fn prom_names_are_always_valid(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
            let name = prom_name(&hostile(bytes));
            prop_assert!(name.starts_with("noblsm_"), "{:?}", name);
            prop_assert!(
                name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
                "invalid char in {:?}",
                name
            );
        }

        /// One hostile series still expositions as exactly three
        /// well-formed lines — a newline smuggled through the help text
        /// or name must not fabricate extra exposition lines, and the
        /// value line must stay `name value` with a parseable value
        /// (NaN/inf bit patterns included).
        #[test]
        fn exposition_stays_line_structured_under_hostile_series(
            name_bytes in proptest::collection::vec(any::<u8>(), 0..24),
            help_bytes in proptest::collection::vec(any::<u8>(), 0..48),
            value_bits in any::<u64>(),
        ) {
            let (name, help) = (hostile(name_bytes), hostile(help_bytes));
            let value = f64::from_bits(value_bits);
            let hub = MetricsHub::new();
            hub.register(MetricKind::Gauge, &name, &help, move |_| value);
            hub.sample_due(Nanos::ZERO, &[]);
            let text = hub.timeline().prometheus();
            let lines: Vec<&str> = text.lines().collect();
            prop_assert_eq!(lines.len(), 3, "series must expose exactly 3 lines: {:?}", text);
            let prom = prom_name(&name);
            prop_assert!(lines[0].starts_with(&format!("# HELP {prom} ")), "{:?}", lines[0]);
            prop_assert!(!lines[0].contains('\n'));
            prop_assert_eq!(lines[1], format!("# TYPE {prom} gauge").as_str());
            let mut parts = lines[2].split(' ');
            prop_assert_eq!(parts.next(), Some(prom.as_str()));
            let v = parts.next();
            prop_assert!(
                v.is_some_and(|v| v.parse::<f64>().is_ok()),
                "value must parse: {:?}",
                lines[2]
            );
            prop_assert!(parts.next().is_none(), "trailing junk: {:?}", lines[2]);
        }
    }
}
