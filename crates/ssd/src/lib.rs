//! A virtual-time SSD device model.
//!
//! The model captures exactly the properties the NobLSM paper's evaluation
//! depends on:
//!
//! * **Bandwidth** — data transfers cost `bytes / bandwidth`.
//! * **Command latency** — every command pays a fixed setup cost.
//! * **FIFO queue** — commands serialize in issue order on a
//!   [`nob_sim::Timeline`], so a slow command delays everything behind it.
//! * **FLUSH barriers** — a flush cannot start before all previously issued
//!   writes complete (guaranteed by FIFO order) and adds a large fixed
//!   latency. This is what makes `fsync` expensive and what NobLSM removes
//!   from the critical path of major compactions.
//! * **Accounting** — bytes written/read and command counts, so the harness
//!   can regenerate Table 1 (number of syncs, size of data synced).
//!
//! Default parameters are calibrated to a PM883-class SATA SSD such that the
//! paper's Fig. 2a ratios (Async ≪ Direct < Sync, ≈13× Async→Sync) emerge;
//! see `SsdConfig::pm883`.
//!
//! # Examples
//!
//! ```
//! use nob_sim::Nanos;
//! use nob_ssd::{Ssd, SsdConfig};
//!
//! let mut ssd = Ssd::new(SsdConfig::pm883());
//! let w = ssd.write(Nanos::ZERO, 2 << 20); // 2 MiB sequential write
//! let f = ssd.flush(w.end);
//! assert!(f.end > w.end); // the flush costs real time
//! assert_eq!(ssd.stats().bytes_written, 2 << 20);
//! ```

mod config;
mod device;
pub mod fault;
mod stats;

pub use config::SsdConfig;
pub use device::Ssd;
pub use fault::{
    FaultInjector, FlushCmd, FlushFault, InjectorHandle, NoFaults, WriteClass, WriteCmd, WriteFault,
};
pub use stats::IoStats;
