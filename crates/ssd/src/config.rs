//! Device parameterization.

use nob_sim::Nanos;

/// Performance parameters of the simulated SSD and its host.
///
/// All bandwidths are in bytes per second. `host_mem_bw` is the rate at
/// which buffered (page-cache) writes are absorbed by host DRAM; it lives
/// here because it is part of the same calibration that makes the paper's
/// Fig. 2a ratios come out.
///
/// # Examples
///
/// ```
/// use nob_ssd::SsdConfig;
///
/// let cfg = SsdConfig::pm883();
/// assert!(cfg.host_mem_bw > cfg.seq_write_bw);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SsdConfig {
    /// Sequential write bandwidth of the device (bytes/s).
    pub seq_write_bw: u64,
    /// Sequential read bandwidth of the device (bytes/s).
    pub seq_read_bw: u64,
    /// Fixed per-command setup latency.
    pub cmd_latency: Nanos,
    /// Latency of a FLUSH command (drain + NAND program barrier).
    pub flush_latency: Nanos,
    /// Host DRAM bandwidth for page-cache (buffered) writes (bytes/s).
    pub host_mem_bw: u64,
}

impl SsdConfig {
    /// Calibration for a Samsung PM883-class 960 GB SATA SSD, the device
    /// used in the paper.
    ///
    /// With these parameters, writing 4 GB in 2 MB buffered files costs
    /// ≈0.8 s (paper: 0.83 s), via direct I/O ≈8.0 s (paper: 8.18 s), and
    /// with per-file fsync ≈10 s (paper: 10.06 s).
    pub fn pm883() -> Self {
        SsdConfig {
            seq_write_bw: 520 * 1_000_000,
            seq_read_bw: 540 * 1_000_000,
            cmd_latency: Nanos::from_micros(60),
            flush_latency: Nanos::from_micros(900),
            host_mem_bw: 5_000 * 1_000_000,
        }
    }

    /// Duration of a data write of `bytes` at device bandwidth
    /// (command latency included).
    pub fn write_cost(&self, bytes: u64) -> Nanos {
        self.cmd_latency + Nanos::for_transfer(bytes, self.seq_write_bw)
    }

    /// Duration of a data read of `bytes` at device bandwidth
    /// (command latency included).
    pub fn read_cost(&self, bytes: u64) -> Nanos {
        self.cmd_latency + Nanos::for_transfer(bytes, self.seq_read_bw)
    }

    /// Duration of absorbing `bytes` into the host page cache.
    pub fn mem_cost(&self, bytes: u64) -> Nanos {
        Nanos::for_transfer(bytes, self.host_mem_bw)
    }
}

impl Default for SsdConfig {
    fn default() -> Self {
        SsdConfig::pm883()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pm883_orderings_hold() {
        let cfg = SsdConfig::pm883();
        // Buffered writes are much cheaper than device writes.
        assert!(cfg.mem_cost(1 << 20) < cfg.write_cost(1 << 20));
        // A flush costs much more than a small write's command latency.
        assert!(cfg.flush_latency > cfg.cmd_latency);
    }

    #[test]
    fn fig2a_calibration_is_in_range() {
        // 4 GB in 2 MB files: async ~0.8 s, direct ~8 s (paper: 0.83 / 8.18).
        let cfg = SsdConfig::pm883();
        let files = 2048u64;
        let file = 2u64 << 20;
        let async_t: Nanos = (0..files).map(|_| cfg.mem_cost(file)).sum();
        let direct_t: Nanos = (0..files).map(|_| cfg.write_cost(file)).sum();
        assert!(async_t.as_secs_f64() > 0.5 && async_t.as_secs_f64() < 1.2, "{async_t}");
        assert!(direct_t.as_secs_f64() > 7.0 && direct_t.as_secs_f64() < 9.0, "{direct_t}");
    }

    #[test]
    fn default_is_pm883() {
        assert_eq!(SsdConfig::default(), SsdConfig::pm883());
    }
}
