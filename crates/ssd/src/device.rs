//! The device itself: a FIFO command queue over an [`SsdConfig`].

use nob_sim::{Nanos, Reservation, Timeline};
use nob_trace::{EventClass, TraceSink};

use crate::fault::{FlushCmd, FlushFault, InjectorHandle, WriteClass, WriteCmd, WriteFault};
use crate::{IoStats, SsdConfig};

/// A simulated SSD with two service classes.
///
/// *Foreground* commands (reads, direct writes, fsync write-back and
/// FLUSH) pass through a FIFO [`Timeline`]; a foreground command issued at
/// `now` starts when the foreground queue is free — it is never delayed by
/// queued background work, modelling the kernel's write-back throttling
/// and NCQ prioritization of synchronous I/O.
///
/// *Background* commands (asynchronous journal-commit write-back) drain in
/// the capacity foreground work leaves over: every foreground reservation
/// that overlaps the background frontier pushes that frontier back by its
/// own duration, so total bandwidth is conserved while foreground latency
/// stays independent of write-back backlog.
///
/// # Examples
///
/// ```
/// use nob_sim::Nanos;
/// use nob_ssd::{Ssd, SsdConfig};
///
/// let mut ssd = Ssd::new(SsdConfig::pm883());
/// let a = ssd.write(Nanos::ZERO, 1 << 20);
/// let b = ssd.write(Nanos::ZERO, 1 << 20);
/// assert_eq!(b.start, a.end); // FIFO: b queues behind a
/// // A large background write-back does not delay a later foreground read…
/// let wb = ssd.write_background(b.end, 256 << 20);
/// let r = ssd.read(b.end, 4096);
/// assert!(r.end < wb.end);
/// ```
#[derive(Debug, Clone)]
pub struct Ssd {
    cfg: SsdConfig,
    timeline: Timeline,
    bg_tail: Nanos,
    last_flush_end: Nanos,
    stats: IoStats,
    injector: Option<InjectorHandle>,
    trace: Option<TraceSink>,
}

impl Ssd {
    /// Creates an idle device with the given parameters.
    pub fn new(cfg: SsdConfig) -> Self {
        Ssd {
            cfg,
            timeline: Timeline::new(),
            bg_tail: Nanos::ZERO,
            last_flush_end: Nanos::ZERO,
            stats: IoStats::new(),
            injector: None,
            trace: None,
        }
    }

    /// Installs a trace sink; every command the device services from now
    /// on emits an issue→completion span (so FLUSH-barrier queueing is
    /// visible as span length). Clones made *after* the call share it.
    pub fn set_trace_sink(&mut self, sink: TraceSink) {
        self.trace = Some(sink);
    }

    /// Removes the trace sink; the emit path becomes a dead branch again.
    pub fn clear_trace_sink(&mut self) {
        self.trace = None;
    }

    /// Emits `class` over `issue → r.end` if a sink is installed.
    fn trace_span(&self, class: EventClass, issue: Nanos, r: Reservation, bytes: u64) {
        if let Some(sink) = &self.trace {
            sink.emit(class, issue, r.end, bytes);
        }
    }

    /// Installs a fault injector; all clones of this device made *after*
    /// the call share its fault stream.
    pub fn set_injector(&mut self, injector: InjectorHandle) {
        self.injector = Some(injector);
    }

    /// Removes the fault injector, restoring the perfect device.
    pub fn clear_injector(&mut self) {
        self.injector = None;
    }

    /// Whether a fault injector is installed.
    pub fn has_injector(&self) -> bool {
        self.injector.is_some()
    }

    /// Consults the injector about a write and accounts the verdict.
    fn write_verdict(
        &mut self,
        at: Nanos,
        bytes: u64,
        background: bool,
        class: WriteClass,
    ) -> WriteFault {
        let Some(injector) = &self.injector else { return WriteFault::None };
        let verdict = injector.on_write(&WriteCmd { at, bytes, background, class });
        match verdict {
            WriteFault::None => WriteFault::None,
            WriteFault::Torn { keep } => {
                self.stats.torn_writes += 1;
                WriteFault::Torn { keep: keep.min(bytes) }
            }
            WriteFault::Corrupt => {
                self.stats.corrupt_writes += 1;
                WriteFault::Corrupt
            }
        }
    }

    /// Consults the injector about a FLUSH and accounts the verdict.
    fn flush_verdict(&mut self, at: Nanos, background: bool) -> FlushFault {
        let Some(injector) = &self.injector else { return FlushFault::None };
        let verdict = injector.on_flush(&FlushCmd { at, background });
        if verdict == FlushFault::DroppedAcked {
            self.stats.dropped_flushes += 1;
        }
        verdict
    }

    /// The device's configuration.
    pub fn config(&self) -> &SsdConfig {
        &self.cfg
    }

    /// Accumulated I/O counters.
    pub fn stats(&self) -> &IoStats {
        &self.stats
    }

    /// Instant at which the foreground command queue drains.
    pub fn free_at(&self) -> Nanos {
        self.timeline.free_at()
    }

    /// Instant at which pending background write-back drains.
    pub fn background_free_at(&self) -> Nanos {
        self.bg_tail
    }

    /// Total foreground busy time.
    pub fn busy_time(&self) -> Nanos {
        self.timeline.busy_time()
    }

    /// Completion instant of the most recently issued FLUSH (foreground
    /// or background); [`Nanos::ZERO`] before the first FLUSH. A FLUSH is
    /// *in flight* at instant `t` when `t < flush_frontier()` — the gauge
    /// the metrics layer samples.
    pub fn flush_frontier(&self) -> Nanos {
        self.last_flush_end
    }

    /// Reserves a foreground window and displaces pending background work
    /// by the same duration (preemption).
    fn reserve_fg(&mut self, now: Nanos, dur: Nanos) -> Reservation {
        let r = self.timeline.reserve(now, dur);
        if self.bg_tail > r.start {
            // Background work was pending during this window: push it back.
            self.bg_tail += dur;
        }
        r
    }

    /// Issues a foreground write of `bytes` at `now`.
    pub fn write(&mut self, now: Nanos, bytes: u64) -> Reservation {
        self.stats.bytes_written += bytes;
        self.stats.write_commands += 1;
        let r = self.reserve_fg(now, self.cfg.write_cost(bytes));
        self.trace_span(EventClass::SsdWrite, now, r, bytes);
        r
    }

    /// Issues a foreground read of `bytes` at `now`.
    pub fn read(&mut self, now: Nanos, bytes: u64) -> Reservation {
        self.stats.bytes_read += bytes;
        self.stats.read_commands += 1;
        let r = self.reserve_fg(now, self.cfg.read_cost(bytes));
        self.trace_span(EventClass::SsdRead, now, r, bytes);
        r
    }

    /// Issues a FLUSH at `now` (foreground).
    ///
    /// FIFO ordering within the foreground class guarantees the flush
    /// starts only after every previously issued foreground command
    /// completed — the "barrier" the paper attributes to syncs. The flush
    /// itself costs [`SsdConfig::flush_latency`].
    pub fn flush(&mut self, now: Nanos) -> Reservation {
        self.stats.flush_commands += 1;
        let r = self.reserve_fg(now, self.cfg.flush_latency);
        self.last_flush_end = self.last_flush_end.max(r.end);
        self.trace_span(EventClass::SsdFlush, now, r, 0);
        r
    }

    /// [`write`](Self::write) plus the injector's verdict for the
    /// command. The caller (the filesystem layer) decides what a torn or
    /// corrupt payload means for durability.
    pub fn write_checked(
        &mut self,
        now: Nanos,
        bytes: u64,
        class: WriteClass,
    ) -> (Reservation, WriteFault) {
        let verdict = self.write_verdict(now, bytes, false, class);
        let r = self.write(now, bytes);
        self.trace_fault_write(&verdict, now, r, bytes);
        (r, verdict)
    }

    /// [`flush`](Self::flush) plus the injector's verdict. A
    /// [`FlushFault::DroppedAcked`] verdict means the returned
    /// reservation is when the device *acknowledged* — nothing actually
    /// became durable.
    pub fn flush_checked(&mut self, now: Nanos) -> (Reservation, FlushFault) {
        let verdict = self.flush_verdict(now, false);
        let r = self.flush(now);
        if verdict == FlushFault::DroppedAcked {
            self.trace_span(EventClass::FaultDroppedFlush, now, r, 0);
        }
        (r, verdict)
    }

    /// [`write_background`](Self::write_background) plus the injector's
    /// verdict for the command.
    pub fn write_background_checked(
        &mut self,
        issue: Nanos,
        bytes: u64,
        class: WriteClass,
    ) -> (Reservation, WriteFault) {
        let verdict = self.write_verdict(issue, bytes, true, class);
        let r = self.write_background(issue, bytes);
        self.trace_fault_write(&verdict, issue, r, bytes);
        (r, verdict)
    }

    /// [`flush_background`](Self::flush_background) plus the injector's
    /// verdict.
    pub fn flush_background_checked(&mut self, issue: Nanos) -> (Reservation, FlushFault) {
        let verdict = self.flush_verdict(issue, true);
        let r = self.flush_background(issue);
        if verdict == FlushFault::DroppedAcked {
            self.trace_span(EventClass::FaultDroppedFlush, issue, r, 0);
        }
        (r, verdict)
    }

    /// Emits the fault-class span matching a write verdict, if any.
    fn trace_fault_write(&self, verdict: &WriteFault, issue: Nanos, r: Reservation, bytes: u64) {
        match verdict {
            WriteFault::None => {}
            WriteFault::Torn { .. } => self.trace_span(EventClass::FaultTornWrite, issue, r, bytes),
            WriteFault::Corrupt => self.trace_span(EventClass::FaultCorruptWrite, issue, r, bytes),
        }
    }

    /// Issues a background write of `bytes` at `issue` (asynchronous
    /// write-back). It runs in leftover capacity: after any earlier
    /// background work and never while the foreground queue is busy.
    pub fn write_background(&mut self, issue: Nanos, bytes: u64) -> Reservation {
        self.stats.bytes_written += bytes;
        self.stats.write_commands += 1;
        let dur = self.cfg.write_cost(bytes);
        let start = issue.max(self.bg_tail).max(self.timeline.free_at());
        let end = start + dur;
        self.bg_tail = end;
        let r = Reservation { start, end };
        self.trace_span(EventClass::SsdBgWrite, issue, r, bytes);
        r
    }

    /// Issues a background FLUSH at `issue` (asynchronous journal commit
    /// records).
    pub fn flush_background(&mut self, issue: Nanos) -> Reservation {
        self.stats.flush_commands += 1;
        let start = issue.max(self.bg_tail).max(self.timeline.free_at());
        let end = start + self.cfg.flush_latency;
        self.bg_tail = end;
        self.last_flush_end = self.last_flush_end.max(end);
        let r = Reservation { start, end };
        self.trace_span(EventClass::SsdBgFlush, issue, r, 0);
        r
    }

    /// Removes `dur` of queued background work (it was promoted to the
    /// foreground class and submitted there — e.g. the journal commit
    /// path writing back ordered data itself instead of waiting for the
    /// flusher).
    pub fn credit_background(&mut self, dur: Nanos) {
        self.bg_tail -= dur;
    }

    /// Resets the I/O counters (not the timelines); used between
    /// benchmark phases.
    pub fn reset_stats(&mut self) {
        self.stats = IoStats::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ssd() -> Ssd {
        Ssd::new(SsdConfig::pm883())
    }

    #[test]
    fn write_accounts_bytes_and_time() {
        let mut d = ssd();
        let r = d.write(Nanos::ZERO, 520 * 1_000_000); // 1 second of data
        assert_eq!(d.stats().bytes_written, 520 * 1_000_000);
        assert_eq!(d.stats().write_commands, 1);
        let secs = r.duration().as_secs_f64();
        assert!((secs - 1.0).abs() < 0.01, "expected ~1s, got {secs}");
    }

    #[test]
    fn flush_acts_as_barrier() {
        let mut d = ssd();
        // Issue a long write, then a flush "from the future is not possible":
        // the flush queues behind the write even if issued at t=0.
        let w = d.write(Nanos::ZERO, 100 << 20);
        let f = d.flush(Nanos::ZERO);
        assert_eq!(f.start, w.end);
        // And a subsequent read queues behind the flush.
        let r = d.read(Nanos::ZERO, 4096);
        assert_eq!(r.start, f.end);
    }

    #[test]
    fn read_and_write_costs_differ_by_bandwidth() {
        let mut d = ssd();
        let w = d.write(Nanos::ZERO, 1 << 30);
        let r = d.read(w.end, 1 << 30);
        // Read bandwidth is higher, so the read is shorter.
        assert!(r.duration() < w.duration());
    }

    #[test]
    fn reset_stats_zeroes_counters_only() {
        let mut d = ssd();
        d.write(Nanos::ZERO, 4096);
        let free = d.free_at();
        d.reset_stats();
        assert_eq!(*d.stats(), IoStats::new());
        assert_eq!(d.free_at(), free);
    }

    #[test]
    fn flush_frontier_tracks_latest_flush_completion() {
        let mut d = ssd();
        assert_eq!(d.flush_frontier(), Nanos::ZERO);
        let f = d.flush(Nanos::ZERO);
        assert_eq!(d.flush_frontier(), f.end);
        // A background flush queued later advances the frontier…
        let bg = d.flush_background(f.end);
        assert_eq!(d.flush_frontier(), bg.end);
        // …and an earlier-completing command never moves it backwards.
        d.flush(Nanos::ZERO);
        assert!(d.flush_frontier() >= bg.end);
    }

    #[test]
    fn zero_byte_write_still_pays_command_latency() {
        let mut d = ssd();
        let r = d.write(Nanos::ZERO, 0);
        assert_eq!(r.duration(), d.config().cmd_latency);
    }
}
