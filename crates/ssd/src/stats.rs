//! Device-level I/O accounting.

/// Counters accumulated by an [`Ssd`](crate::Ssd) over its lifetime.
///
/// The harness reads these (together with the filesystem's sync counters)
/// to regenerate the paper's Table 1.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct IoStats {
    /// Total bytes transferred by write commands.
    pub bytes_written: u64,
    /// Total bytes transferred by read commands.
    pub bytes_read: u64,
    /// Number of write commands issued.
    pub write_commands: u64,
    /// Number of read commands issued.
    pub read_commands: u64,
    /// Number of FLUSH commands issued.
    pub flush_commands: u64,
    /// Write commands the injector tore (prefix durable, tail lost).
    pub torn_writes: u64,
    /// Write commands the injector silently corrupted on media.
    pub corrupt_writes: u64,
    /// FLUSH commands the injector acknowledged without draining.
    pub dropped_flushes: u64,
}

impl IoStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        IoStats::default()
    }

    /// Total commands of any kind.
    pub fn total_commands(&self) -> u64 {
        self.write_commands + self.read_commands + self.flush_commands
    }

    /// Total faults of any kind the injector produced.
    pub fn faults_injected(&self) -> u64 {
        self.torn_writes + self.corrupt_writes + self.dropped_flushes
    }

    /// Counter-wise difference `self - earlier`, for measuring a phase.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` has any counter larger than `self` (i.e. it is
    /// not actually an earlier snapshot of the same device).
    pub fn since(&self, earlier: &IoStats) -> IoStats {
        let sub = |a: u64, b: u64| -> u64 {
            a.checked_sub(b).expect("`earlier` is not an earlier snapshot")
        };
        IoStats {
            bytes_written: sub(self.bytes_written, earlier.bytes_written),
            bytes_read: sub(self.bytes_read, earlier.bytes_read),
            write_commands: sub(self.write_commands, earlier.write_commands),
            read_commands: sub(self.read_commands, earlier.read_commands),
            flush_commands: sub(self.flush_commands, earlier.flush_commands),
            torn_writes: sub(self.torn_writes, earlier.torn_writes),
            corrupt_writes: sub(self.corrupt_writes, earlier.corrupt_writes),
            dropped_flushes: sub(self.dropped_flushes, earlier.dropped_flushes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_subtracts_counterwise() {
        let early = IoStats { bytes_written: 10, write_commands: 1, ..IoStats::new() };
        let late = IoStats {
            bytes_written: 25,
            bytes_read: 5,
            write_commands: 3,
            read_commands: 1,
            flush_commands: 2,
            ..IoStats::new()
        };
        let d = late.since(&early);
        assert_eq!(d.bytes_written, 15);
        assert_eq!(d.bytes_read, 5);
        assert_eq!(d.write_commands, 2);
        assert_eq!(d.total_commands(), 5);
    }

    #[test]
    #[should_panic(expected = "earlier snapshot")]
    fn since_rejects_wrong_order() {
        let early = IoStats { bytes_written: 10, ..IoStats::new() };
        let late = IoStats { bytes_written: 25, ..IoStats::new() };
        let _ = early.since(&late);
    }
}
