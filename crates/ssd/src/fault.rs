//! Deterministic device-fault injection.
//!
//! The fault plane models the ways a real SSD betrays the software above
//! it, as catalogued in the crash-consistency literature the chaos
//! harness reproduces:
//!
//! * **Torn writes** — a multi-sector write is interrupted and only a
//!   prefix of the payload reaches stable media, even though the command
//!   completed at the interface.
//! * **Silent corruption** — the command completes but the payload is
//!   damaged on media (firmware bug, bit rot); nothing reports an error
//!   until something reads the data back.
//! * **Dropped-but-acknowledged FLUSH** — the device acknowledges a FLUSH
//!   without actually draining its volatile cache, so "durable" data is
//!   lost by a later power cut. This is the exact lie that breaks
//!   fsync-based durability reasoning.
//!
//! Verdicts are produced here, at the device boundary, but *consumed* by
//! the filesystem layer above, which knows what each command meant
//! (ordered data, journal block, fast-commit record) and turns the
//! verdict into the right durability outcome. Injection is strictly
//! deterministic: an injector sees every command in issue order with its
//! virtual-time instant and returns a verdict from its own seeded state,
//! so a campaign seed reproduces the same fault schedule bit-for-bit.
//!
//! When no injector is installed the hot path costs one `Option`
//! discriminant test per command.

use std::fmt;
use std::sync::{Arc, Mutex};

use nob_sim::Nanos;

/// What a write command is carrying, from the issuing layer's view.
///
/// Injectors use the class to target specific windows — e.g. corrupt only
/// journal blocks to simulate a torn commit record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WriteClass {
    /// Ordered file data (page-cache write-back or direct I/O).
    Data,
    /// JBD2 journal blocks (descriptor/metadata/commit record).
    Journal,
    /// An Ext4 fast-commit record.
    FastCommit,
    /// Anything the issuing layer did not classify.
    Other,
}

/// One write command as the injector sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteCmd {
    /// Virtual-time instant the command was issued.
    pub at: Nanos,
    /// Payload size in bytes.
    pub bytes: u64,
    /// Foreground or background service class.
    pub background: bool,
    /// What the payload is.
    pub class: WriteClass,
}

/// One FLUSH command as the injector sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlushCmd {
    /// Virtual-time instant the command was issued.
    pub at: Nanos,
    /// Foreground or background service class.
    pub background: bool,
}

/// Injector verdict for a write command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFault {
    /// The write lands intact.
    None,
    /// Only the first `keep` bytes reach stable media; the tail is lost
    /// if power fails before the region is rewritten. `keep` is clamped
    /// to the payload size by the device.
    Torn {
        /// Durable prefix length in bytes.
        keep: u64,
    },
    /// The payload lands but is silently damaged; reads succeed at the
    /// device level and return garbage for checksums to catch.
    Corrupt,
}

/// Injector verdict for a FLUSH command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushFault {
    /// The flush drains the cache as promised.
    None,
    /// The device acknowledges completion without draining; everything
    /// the flush claimed to make durable is still volatile.
    DroppedAcked,
}

/// A deterministic source of device faults.
///
/// Implementations must be pure functions of their own state and the
/// command stream: given the same seed and the same virtual-time command
/// sequence they must return the same verdicts. The default methods
/// inject nothing, so an injector can override only the command kind it
/// cares about.
pub trait FaultInjector: Send {
    /// Verdict for a write command.
    fn on_write(&mut self, cmd: &WriteCmd) -> WriteFault {
        let _ = cmd;
        WriteFault::None
    }

    /// Verdict for a FLUSH command.
    fn on_flush(&mut self, cmd: &FlushCmd) -> FlushFault {
        let _ = cmd;
        FlushFault::None
    }
}

/// The zero-cost default: never injects anything.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoFaults;

impl FaultInjector for NoFaults {}

/// Shared, clonable handle to an injector.
///
/// The device is `Clone` (snapshots of the timeline are cheap and the
/// crash harness relies on them), so the injector sits behind an `Arc`:
/// clones of a device share one fault stream, which is what a campaign
/// wants — the fault schedule belongs to the *run*, not to any one
/// snapshot.
#[derive(Clone)]
pub struct InjectorHandle(Arc<Mutex<dyn FaultInjector>>);

impl InjectorHandle {
    /// Wraps an injector.
    pub fn new<I: FaultInjector + 'static>(injector: I) -> Self {
        InjectorHandle(Arc::new(Mutex::new(injector)))
    }

    /// Asks the injector for a write verdict.
    pub fn on_write(&self, cmd: &WriteCmd) -> WriteFault {
        self.0.lock().unwrap_or_else(|p| p.into_inner()).on_write(cmd)
    }

    /// Asks the injector for a flush verdict.
    pub fn on_flush(&self, cmd: &FlushCmd) -> FlushFault {
        self.0.lock().unwrap_or_else(|p| p.into_inner()).on_flush(cmd)
    }
}

impl fmt::Debug for InjectorHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("InjectorHandle(..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Ssd, SsdConfig};

    struct EveryOtherWriteTorn {
        n: u64,
    }

    impl FaultInjector for EveryOtherWriteTorn {
        fn on_write(&mut self, cmd: &WriteCmd) -> WriteFault {
            self.n += 1;
            if self.n.is_multiple_of(2) {
                WriteFault::Torn { keep: cmd.bytes / 2 }
            } else {
                WriteFault::None
            }
        }
    }

    #[test]
    fn injector_sees_commands_in_order_and_is_shared_by_clones() {
        let mut a = Ssd::new(SsdConfig::pm883());
        a.set_injector(InjectorHandle::new(EveryOtherWriteTorn { n: 0 }));
        let mut b = a.clone();
        let cmd = |at, bytes| WriteCmd { at, bytes, background: false, class: WriteClass::Data };
        let (_, f1) = a.write_checked(Nanos::ZERO, 100, WriteClass::Data);
        let (_, f2) = b.write_checked(Nanos::ZERO, 100, WriteClass::Data);
        assert_eq!(f1, WriteFault::None);
        assert_eq!(f2, WriteFault::Torn { keep: 50 });
        let _ = cmd(Nanos::ZERO, 0);
    }

    #[test]
    fn verdicts_update_fault_stats() {
        struct AlwaysBad;
        impl FaultInjector for AlwaysBad {
            fn on_write(&mut self, _cmd: &WriteCmd) -> WriteFault {
                WriteFault::Corrupt
            }
            fn on_flush(&mut self, _cmd: &FlushCmd) -> FlushFault {
                FlushFault::DroppedAcked
            }
        }
        let mut d = Ssd::new(SsdConfig::pm883());
        d.set_injector(InjectorHandle::new(AlwaysBad));
        d.write_checked(Nanos::ZERO, 64, WriteClass::Journal);
        d.flush_checked(Nanos::ZERO);
        assert_eq!(d.stats().corrupt_writes, 1);
        assert_eq!(d.stats().dropped_flushes, 1);
        assert_eq!(d.stats().faults_injected(), 2);
    }

    #[test]
    fn no_injector_means_no_faults() {
        let mut d = Ssd::new(SsdConfig::pm883());
        let (_, wf) = d.write_checked(Nanos::ZERO, 64, WriteClass::Data);
        let (_, ff) = d.flush_checked(Nanos::ZERO);
        assert_eq!(wf, WriteFault::None);
        assert_eq!(ff, FlushFault::None);
        assert_eq!(d.stats().faults_injected(), 0);
    }

    #[test]
    fn torn_keep_is_clamped_to_payload() {
        struct KeepTooMuch;
        impl FaultInjector for KeepTooMuch {
            fn on_write(&mut self, _cmd: &WriteCmd) -> WriteFault {
                WriteFault::Torn { keep: u64::MAX }
            }
        }
        let mut d = Ssd::new(SsdConfig::pm883());
        d.set_injector(InjectorHandle::new(KeepTooMuch));
        let (_, wf) = d.write_checked(Nanos::ZERO, 512, WriteClass::Data);
        assert_eq!(wf, WriteFault::Torn { keep: 512 });
    }
}
