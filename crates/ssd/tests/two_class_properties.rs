//! Property tests for the two-class device model: foreground latency is
//! independent of background backlog, background work is conserved (never
//! lost, only deferred), and ordering holds within each class.

use nob_sim::Nanos;
use nob_ssd::{Ssd, SsdConfig};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Cmd {
    FgWrite(u32),
    FgRead(u32),
    Flush,
    BgWrite(u32),
}

fn cmd() -> impl Strategy<Value = Cmd> {
    prop_oneof![
        (1u32..4_000_000).prop_map(Cmd::FgWrite),
        (1u32..4_000_000).prop_map(Cmd::FgRead),
        Just(Cmd::Flush),
        (1u32..64_000_000).prop_map(Cmd::BgWrite),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Foreground completions are identical whether or not background
    /// traffic exists (perfect preemption), and per-class ordering holds.
    #[test]
    fn foreground_is_immune_to_background(
        cmds in proptest::collection::vec(cmd(), 1..80),
        gap in 0u64..100_000,
    ) {
        let mut with_bg = Ssd::new(SsdConfig::pm883());
        let mut without_bg = Ssd::new(SsdConfig::pm883());
        let mut now = Nanos::ZERO;
        let mut prev_fg_end = Nanos::ZERO;
        let mut prev_bg_end = Nanos::ZERO;
        for c in &cmds {
            now += Nanos::from_nanos(gap);
            match c {
                Cmd::FgWrite(b) => {
                    let a = with_bg.write(now, *b as u64);
                    let b2 = without_bg.write(now, *b as u64);
                    prop_assert_eq!(a, b2, "fg write must not see bg traffic");
                    prop_assert!(a.start >= prev_fg_end);
                    prev_fg_end = a.end;
                }
                Cmd::FgRead(b) => {
                    let a = with_bg.read(now, *b as u64);
                    let b2 = without_bg.read(now, *b as u64);
                    prop_assert_eq!(a, b2, "fg read must not see bg traffic");
                    prop_assert!(a.start >= prev_fg_end);
                    prev_fg_end = a.end;
                }
                Cmd::Flush => {
                    let a = with_bg.flush(now);
                    let b2 = without_bg.flush(now);
                    prop_assert_eq!(a, b2);
                    prev_fg_end = a.end;
                }
                Cmd::BgWrite(b) => {
                    let r = with_bg.write_background(now, *b as u64);
                    prop_assert!(r.start >= prev_bg_end, "bg order preserved");
                    prop_assert!(r.end > r.start);
                    prev_bg_end = r.end;
                }
            }
        }
    }

    /// Conservation: background completions are pushed back by at least
    /// the foreground busy time that overlapped them — the device never
    /// does two things at the literal same capacity for free.
    #[test]
    fn background_is_deferred_not_lost(
        bg_bytes in 1u64..128_000_000,
        fg_bytes in proptest::collection::vec(1u64..4_000_000, 0..20),
    ) {
        let cfg = SsdConfig::pm883();
        let mut ssd = Ssd::new(cfg.clone());
        let bg = ssd.write_background(Nanos::ZERO, bg_bytes);
        let ideal_end = bg.end;
        // Foreground arrives while the background write is in flight.
        let mut fg_busy = Nanos::ZERO;
        for b in &fg_bytes {
            let r = ssd.write(Nanos::ZERO, *b);
            if r.start < ssd.background_free_at() {
                fg_busy += r.duration();
            }
        }
        // A second background write lands after all the deferral.
        let bg2 = ssd.write_background(Nanos::ZERO, 1);
        prop_assert!(
            bg2.start.as_nanos() + 1 >= ideal_end.as_nanos(),
            "bg2 cannot start before bg1 would have finished"
        );
        prop_assert!(
            ssd.background_free_at() >= ideal_end + fg_busy,
            "deferral must cover the overlapping foreground busy time"
        );
    }

    /// Stats account every byte exactly once across both classes.
    #[test]
    fn stats_count_both_classes(
        fg in proptest::collection::vec(1u64..1_000_000, 0..20),
        bg in proptest::collection::vec(1u64..1_000_000, 0..20),
    ) {
        let mut ssd = Ssd::new(SsdConfig::pm883());
        let mut total = 0u64;
        for b in &fg {
            ssd.write(Nanos::ZERO, *b);
            total += b;
        }
        for b in &bg {
            ssd.write_background(Nanos::ZERO, *b);
            total += b;
        }
        prop_assert_eq!(ssd.stats().bytes_written, total);
        prop_assert_eq!(ssd.stats().write_commands, (fg.len() + bg.len()) as u64);
    }
}
