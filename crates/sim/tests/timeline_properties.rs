//! Property tests for the virtual-time primitives.

use nob_sim::{EventQueue, Nanos, Timeline};
use proptest::prelude::*;

proptest! {
    /// FIFO invariants: reservations never overlap, start no earlier than
    /// requested, preserve issue order, and busy time equals the sum of
    /// durations.
    #[test]
    fn timeline_reservations_are_fifo_and_disjoint(
        requests in proptest::collection::vec((0u64..10_000_000, 0u64..1_000_000), 1..100),
    ) {
        let mut t = Timeline::new();
        let mut prev_end = Nanos::ZERO;
        let mut total = Nanos::ZERO;
        for (now, dur) in requests {
            let (now, dur) = (Nanos::from_nanos(now), Nanos::from_nanos(dur));
            let r = t.reserve(now, dur);
            prop_assert!(r.start >= now, "never starts before issue");
            prop_assert!(r.start >= prev_end, "never overlaps the previous reservation");
            prop_assert_eq!(r.end, r.start + dur);
            prev_end = r.end;
            total += dur;
        }
        prop_assert_eq!(t.busy_time(), total);
        prop_assert_eq!(t.free_at(), prev_end);
    }

    /// The event queue pops in non-decreasing time order and same-instant
    /// events pop in insertion order.
    #[test]
    fn event_queue_is_a_stable_priority_queue(
        events in proptest::collection::vec(0u64..1000, 1..200),
    ) {
        let mut q = EventQueue::new();
        for (i, at) in events.iter().enumerate() {
            q.push(Nanos::from_nanos(*at), (*at, i));
        }
        let mut last: Option<(Nanos, usize)> = None;
        while let Some((at, (orig, idx))) = q.pop() {
            prop_assert_eq!(at.as_nanos(), orig);
            if let Some((pat, pidx)) = last {
                prop_assert!(at >= pat, "time order");
                if at == pat {
                    prop_assert!(idx > pidx, "stable within an instant");
                }
            }
            last = Some((at, idx));
        }
    }

    /// `pop_due` never yields a future event and drains exactly the due
    /// prefix.
    #[test]
    fn pop_due_respects_the_horizon(
        events in proptest::collection::vec(0u64..1000, 1..100),
        horizon in 0u64..1000,
    ) {
        let mut q = EventQueue::new();
        let due = events.iter().filter(|&&e| e <= horizon).count();
        for at in &events {
            q.push(Nanos::from_nanos(*at), *at);
        }
        let mut got = 0;
        while let Some((at, _)) = q.pop_due(Nanos::from_nanos(horizon)) {
            prop_assert!(at <= Nanos::from_nanos(horizon));
            got += 1;
        }
        prop_assert_eq!(got, due);
    }

    /// Transfer durations compose: cost(a) + cost(b) ≥ cost(a + b) minus
    /// rounding, and scale linearly with byte count.
    #[test]
    fn transfer_costs_are_sane(bytes in 1u64..1_000_000_000, bw in 1_000u64..10_000_000_000) {
        let one = Nanos::for_transfer(bytes, bw);
        let double = Nanos::for_transfer(bytes * 2, bw);
        prop_assert!(double >= one);
        let diff = double.as_nanos() as i128 - 2 * one.as_nanos() as i128;
        prop_assert!(diff.abs() <= 2, "linear within rounding: {diff}");
    }
}
