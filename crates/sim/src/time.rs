//! Virtual time represented as nanoseconds.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A virtual instant or duration, in nanoseconds.
///
/// `Nanos` deliberately conflates instants and durations the way `u64`
/// timestamps usually do in storage simulators: the zero point is the start
/// of the simulation, and arithmetic saturates rather than panicking so that
/// defensive subtraction (`end - start`) is always safe.
///
/// # Examples
///
/// ```
/// use nob_sim::Nanos;
///
/// let t = Nanos::from_millis(5) + Nanos::from_micros(250);
/// assert_eq!(t.as_nanos(), 5_250_000);
/// assert!(Nanos::from_secs(1) > t);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Nanos(u64);

impl Nanos {
    /// The zero instant (simulation start) / zero duration.
    pub const ZERO: Nanos = Nanos(0);
    /// The largest representable instant; used as "never".
    pub const MAX: Nanos = Nanos(u64::MAX);

    /// Creates a `Nanos` from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Nanos(ns)
    }

    /// Creates a `Nanos` from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Nanos(us.saturating_mul(1_000))
    }

    /// Creates a `Nanos` from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Nanos(ms.saturating_mul(1_000_000))
    }

    /// Creates a `Nanos` from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Nanos(s.saturating_mul(1_000_000_000))
    }

    /// Creates a `Nanos` from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "seconds must be finite and non-negative");
        Nanos((s * 1e9).round() as u64)
    }

    /// Raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Value in microseconds, truncating.
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Value in milliseconds, truncating.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Value in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Value in fractional microseconds (the unit the paper reports).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Saturating addition.
    pub const fn saturating_add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction (clamps at zero).
    pub const fn saturating_sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(rhs.0))
    }

    /// Returns the later of two instants.
    pub fn max(self, other: Nanos) -> Nanos {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the earlier of two instants.
    pub fn min(self, other: Nanos) -> Nanos {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Checked conversion of a byte count and bandwidth (bytes/second) to a
    /// transfer duration. Returns [`Nanos::ZERO`] for zero bytes.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is zero.
    pub fn for_transfer(bytes: u64, bytes_per_sec: u64) -> Nanos {
        assert!(bytes_per_sec > 0, "bandwidth must be positive");
        if bytes == 0 {
            return Nanos::ZERO;
        }
        // ns = bytes * 1e9 / bw, computed in u128 to avoid overflow.
        let ns = (bytes as u128 * 1_000_000_000u128) / bytes_per_sec as u128;
        Nanos(ns.min(u64::MAX as u128) as u64)
    }
}

impl Add for Nanos {
    type Output = Nanos;
    fn add(self, rhs: Nanos) -> Nanos {
        self.saturating_add(rhs)
    }
}

impl AddAssign for Nanos {
    fn add_assign(&mut self, rhs: Nanos) {
        *self = *self + rhs;
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    fn sub(self, rhs: Nanos) -> Nanos {
        self.saturating_sub(rhs)
    }
}

impl SubAssign for Nanos {
    fn sub_assign(&mut self, rhs: Nanos) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Nanos {
    type Output = Nanos;
    fn mul(self, rhs: u64) -> Nanos {
        Nanos(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for Nanos {
    type Output = Nanos;
    fn div(self, rhs: u64) -> Nanos {
        Nanos(self.0 / rhs)
    }
}

impl Sum for Nanos {
    fn sum<I: Iterator<Item = Nanos>>(iter: I) -> Nanos {
        iter.fold(Nanos::ZERO, Add::add)
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

impl From<u64> for Nanos {
    fn from(ns: u64) -> Self {
        Nanos(ns)
    }
}

impl From<Nanos> for u64 {
    fn from(n: Nanos) -> u64 {
        n.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_constructors_agree() {
        assert_eq!(Nanos::from_secs(1), Nanos::from_millis(1_000));
        assert_eq!(Nanos::from_millis(1), Nanos::from_micros(1_000));
        assert_eq!(Nanos::from_micros(1), Nanos::from_nanos(1_000));
    }

    #[test]
    fn arithmetic_saturates() {
        assert_eq!(Nanos::ZERO - Nanos::from_secs(1), Nanos::ZERO);
        assert_eq!(Nanos::MAX + Nanos::from_secs(1), Nanos::MAX);
    }

    #[test]
    fn transfer_duration_is_exact_for_round_numbers() {
        // 1 MiB at 1 MiB/s is exactly one second.
        let mib = 1u64 << 20;
        assert_eq!(Nanos::for_transfer(mib, mib), Nanos::from_secs(1));
        // Zero bytes take zero time regardless of bandwidth.
        assert_eq!(Nanos::for_transfer(0, 1), Nanos::ZERO);
    }

    #[test]
    fn transfer_duration_does_not_overflow_large_inputs() {
        let d = Nanos::for_transfer(u64::MAX, 1);
        assert_eq!(d, Nanos::MAX);
    }

    #[test]
    fn display_picks_human_units() {
        assert_eq!(Nanos::from_nanos(12).to_string(), "12ns");
        assert_eq!(Nanos::from_micros(12).to_string(), "12.000us");
        assert_eq!(Nanos::from_millis(12).to_string(), "12.000ms");
        assert_eq!(Nanos::from_secs(12).to_string(), "12.000s");
    }

    #[test]
    fn min_max_are_total() {
        let a = Nanos::from_micros(3);
        let b = Nanos::from_micros(7);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(a), a);
    }

    #[test]
    fn sum_of_durations() {
        let total: Nanos = [Nanos::from_micros(1), Nanos::from_micros(2)].into_iter().sum();
        assert_eq!(total, Nanos::from_micros(3));
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(Nanos::from_secs_f64(0.5), Nanos::from_millis(500));
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn from_secs_f64_rejects_negative() {
        let _ = Nanos::from_secs_f64(-1.0);
    }
}
