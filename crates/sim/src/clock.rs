//! Per-actor virtual clocks.

use crate::Nanos;

/// A monotonically non-decreasing virtual clock owned by one simulated actor
/// (a client thread, the background compaction thread, the journal timer…).
///
/// Clocks only ever move forward: [`Clock::advance_to`] with an earlier
/// instant is a no-op, which makes "wait until X happened" idempotent.
///
/// # Examples
///
/// ```
/// use nob_sim::{Clock, Nanos};
///
/// let mut c = Clock::new();
/// c.advance(Nanos::from_micros(10));
/// c.advance_to(Nanos::from_micros(5)); // earlier: ignored
/// assert_eq!(c.now(), Nanos::from_micros(10));
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Clock {
    now: Nanos,
}

impl Clock {
    /// Creates a clock at the simulation origin (t = 0).
    pub fn new() -> Self {
        Clock::default()
    }

    /// Creates a clock already advanced to `start`.
    pub fn at(start: Nanos) -> Self {
        Clock { now: start }
    }

    /// The current virtual instant.
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Advances the clock by a duration.
    pub fn advance(&mut self, by: Nanos) {
        self.now += by;
    }

    /// Advances the clock to an instant, if that instant is in the future.
    /// Returns the stall duration (zero if `to` was not in the future).
    pub fn advance_to(&mut self, to: Nanos) -> Nanos {
        if to > self.now {
            let stall = to - self.now;
            self.now = to;
            stall
        } else {
            Nanos::ZERO
        }
    }
}

/// A cloneable, shareable [`Clock`]: the scheduler owns one and hands the
/// same handle to every component that needs "the current virtual time"
/// without threading `now: Nanos` through each call.
///
/// All clones observe and advance the same instant. Like [`Clock`], the
/// shared clock is monotone: advancing to an earlier instant is a no-op.
///
/// # Examples
///
/// ```
/// use nob_sim::{Nanos, SharedClock};
///
/// let scheduler = SharedClock::new();
/// let worker = scheduler.clone();
/// worker.advance_to(Nanos::from_micros(3));
/// assert_eq!(scheduler.now(), Nanos::from_micros(3));
/// ```
#[derive(Debug, Clone, Default)]
pub struct SharedClock {
    inner: std::sync::Arc<std::sync::Mutex<Clock>>,
}

impl SharedClock {
    /// Creates a shared clock at the simulation origin (t = 0).
    pub fn new() -> Self {
        SharedClock::default()
    }

    /// Creates a shared clock already advanced to `start`.
    pub fn at(start: Nanos) -> Self {
        SharedClock { inner: std::sync::Arc::new(std::sync::Mutex::new(Clock::at(start))) }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Clock> {
        // A panic while holding the lock cannot corrupt a Copy instant;
        // recover instead of cascading the poison.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The current virtual instant.
    pub fn now(&self) -> Nanos {
        self.lock().now()
    }

    /// Advances the clock by a duration.
    pub fn advance(&self, by: Nanos) {
        self.lock().advance(by);
    }

    /// Advances the clock to an instant, if it is in the future. Returns
    /// the stall duration (zero if `to` was not in the future).
    pub fn advance_to(&self, to: Nanos) -> Nanos {
        self.lock().advance_to(to)
    }

    /// Whether two handles share one underlying clock.
    pub fn same_clock(&self, other: &SharedClock) -> bool {
        std::sync::Arc::ptr_eq(&self.inner, &other.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        assert_eq!(Clock::new().now(), Nanos::ZERO);
    }

    #[test]
    fn shared_clock_is_shared_and_monotone() {
        let a = SharedClock::at(Nanos::from_micros(2));
        let b = a.clone();
        assert_eq!(b.now(), Nanos::from_micros(2));
        let stall = b.advance_to(Nanos::from_micros(9));
        assert_eq!(stall, Nanos::from_micros(7));
        assert_eq!(a.now(), Nanos::from_micros(9));
        assert_eq!(a.advance_to(Nanos::from_micros(1)), Nanos::ZERO, "monotone");
        a.advance(Nanos::from_micros(1));
        assert_eq!(b.now(), Nanos::from_micros(10));
        assert!(a.same_clock(&b));
        assert!(!a.same_clock(&SharedClock::new()));
    }

    #[test]
    fn at_starts_elsewhere() {
        assert_eq!(Clock::at(Nanos::from_secs(3)).now(), Nanos::from_secs(3));
    }

    #[test]
    fn advance_accumulates() {
        let mut c = Clock::new();
        c.advance(Nanos::from_micros(2));
        c.advance(Nanos::from_micros(3));
        assert_eq!(c.now(), Nanos::from_micros(5));
    }

    #[test]
    fn advance_to_reports_stall() {
        let mut c = Clock::new();
        let stall = c.advance_to(Nanos::from_micros(7));
        assert_eq!(stall, Nanos::from_micros(7));
        // Going backwards is a no-op with zero stall.
        let stall = c.advance_to(Nanos::from_micros(1));
        assert_eq!(stall, Nanos::ZERO);
        assert_eq!(c.now(), Nanos::from_micros(7));
    }
}
