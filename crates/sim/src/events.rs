//! A time-ordered event queue for timer-style simulation events.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::Nanos;

/// A min-heap of `(time, payload)` pairs with stable FIFO ordering for
/// same-instant events.
///
/// The LSM world uses this for everything that fires "at a time" rather than
/// "after an I/O": journal commit ticks, NobLSM's 5-second reclamation poll,
/// scheduled crash injections.
///
/// # Examples
///
/// ```
/// use nob_sim::{EventQueue, Nanos};
///
/// let mut q = EventQueue::new();
/// q.push(Nanos::from_secs(5), "commit");
/// q.push(Nanos::from_secs(2), "poll");
/// assert_eq!(q.pop_due(Nanos::from_secs(3)), Some((Nanos::from_secs(2), "poll")));
/// assert_eq!(q.pop_due(Nanos::from_secs(3)), None); // "commit" not due yet
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    at: Nanos,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.at.cmp(&other.at).then(self.seq.cmp(&other.seq))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue { heap: BinaryHeap::new(), seq: 0 }
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules `payload` to fire at `at`.
    pub fn push(&mut self, at: Nanos, payload: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { at, seq, payload }));
    }

    /// The instant of the next event, if any.
    pub fn next_at(&self) -> Option<Nanos> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// Pops the earliest event whose time is `<= now`.
    ///
    /// Events scheduled for the same instant pop in insertion order.
    pub fn pop_due(&mut self, now: Nanos) -> Option<(Nanos, E)> {
        if self.next_at().is_some_and(|at| at <= now) {
            self.heap.pop().map(|Reverse(e)| (e.at, e.payload))
        } else {
            None
        }
    }

    /// Pops the earliest event unconditionally.
    pub fn pop(&mut self) -> Option<(Nanos, E)> {
        self.heap.pop().map(|Reverse(e)| (e.at, e.payload))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Nanos::from_secs(3), 'c');
        q.push(Nanos::from_secs(1), 'a');
        q.push(Nanos::from_secs(2), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn same_instant_is_fifo() {
        let mut q = EventQueue::new();
        let t = Nanos::from_secs(1);
        q.push(t, 1);
        q.push(t, 2);
        q.push(t, 3);
        assert_eq!(q.pop(), Some((t, 1)));
        assert_eq!(q.pop(), Some((t, 2)));
        assert_eq!(q.pop(), Some((t, 3)));
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.push(Nanos::from_secs(5), ());
        assert_eq!(q.pop_due(Nanos::from_secs(4)), None);
        assert_eq!(q.pop_due(Nanos::from_secs(5)), Some((Nanos::from_secs(5), ())));
        assert!(q.is_empty());
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.push(Nanos::ZERO, ());
        q.push(Nanos::from_secs(1), ());
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.next_at(), None);
    }
}
