//! Discrete virtual-time primitives for the NobLSM reproduction.
//!
//! Everything in this workspace that "takes time" — SSD commands, journal
//! commits, background compactions — is accounted against a *virtual* clock
//! rather than the wall clock. This crate provides the three primitives the
//! rest of the stack builds on:
//!
//! * [`Nanos`] — a virtual instant/duration in nanoseconds.
//! * [`Clock`] — a per-actor clock (each simulated thread owns one).
//! * [`Timeline`] — a FIFO resource (the SSD command queue) that hands out
//!   `[start, end)` reservations in issue order.
//! * [`EventQueue`] — a time-ordered queue for timer-style events (journal
//!   commit ticks, reclamation polls).
//!
//! # Examples
//!
//! ```
//! use nob_sim::{Clock, Nanos, Timeline};
//!
//! let mut clock = Clock::new();
//! let mut device = Timeline::new();
//! // Two back-to-back 1 ms commands issued at t=0 serialize on the device.
//! let a = device.reserve(clock.now(), Nanos::from_millis(1));
//! let b = device.reserve(clock.now(), Nanos::from_millis(1));
//! assert_eq!(b.start, a.end);
//! clock.advance_to(b.end);
//! assert_eq!(clock.now(), Nanos::from_millis(2));
//! ```

mod clock;
mod events;
mod time;
mod timeline;

pub use clock::{Clock, SharedClock};
pub use events::EventQueue;
pub use time::Nanos;
pub use timeline::{Reservation, Timeline};
