//! A FIFO resource timeline: the virtual-time model of a device queue.

use crate::Nanos;

/// The `[start, end)` window a [`Timeline`] granted to one command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reservation {
    /// When the resource began serving this command.
    pub start: Nanos,
    /// When the command completes.
    pub end: Nanos,
}

impl Reservation {
    /// Service duration of the command.
    pub fn duration(&self) -> Nanos {
        self.end - self.start
    }

    /// Queueing delay experienced by a command issued at `issued`.
    pub fn queue_delay(&self, issued: Nanos) -> Nanos {
        self.start - issued
    }
}

/// A single-server FIFO resource.
///
/// Commands are served strictly in issue order: a command issued at `now`
/// starts at `max(now, free_at)` and occupies the resource for its duration.
/// This is the essential model behind the paper's "barrier" effect — a sync
/// (flush) issued into the queue delays everything issued after it.
///
/// # Examples
///
/// ```
/// use nob_sim::{Nanos, Timeline};
///
/// let mut t = Timeline::new();
/// let a = t.reserve(Nanos::ZERO, Nanos::from_millis(2));
/// // Issued later but while the device is still busy: queues behind `a`.
/// let b = t.reserve(Nanos::from_millis(1), Nanos::from_millis(2));
/// assert_eq!(b.start, a.end);
/// assert_eq!(b.queue_delay(Nanos::from_millis(1)), Nanos::from_millis(1));
/// ```
#[derive(Debug, Default, Clone)]
pub struct Timeline {
    free_at: Nanos,
    busy: Nanos,
    commands: u64,
}

impl Timeline {
    /// Creates an idle timeline.
    pub fn new() -> Self {
        Timeline::default()
    }

    /// Reserves the resource for `duration`, for a command issued at `now`.
    pub fn reserve(&mut self, now: Nanos, duration: Nanos) -> Reservation {
        let start = now.max(self.free_at);
        let end = start + duration;
        self.free_at = end;
        self.busy += duration;
        self.commands += 1;
        Reservation { start, end }
    }

    /// The instant at which the resource next becomes idle.
    pub fn free_at(&self) -> Nanos {
        self.free_at
    }

    /// Total busy time accumulated so far.
    pub fn busy_time(&self) -> Nanos {
        self.busy
    }

    /// Number of commands served.
    pub fn commands(&self) -> u64 {
        self.commands
    }

    /// Utilization of the resource over `[0, horizon]`, in `[0, 1]`.
    ///
    /// Returns 0.0 for a zero horizon.
    pub fn utilization(&self, horizon: Nanos) -> f64 {
        if horizon == Nanos::ZERO {
            0.0
        } else {
            (self.busy.as_nanos() as f64 / horizon.as_nanos() as f64).min(1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_resource_starts_immediately() {
        let mut t = Timeline::new();
        let r = t.reserve(Nanos::from_micros(5), Nanos::from_micros(10));
        assert_eq!(r.start, Nanos::from_micros(5));
        assert_eq!(r.end, Nanos::from_micros(15));
        assert_eq!(r.queue_delay(Nanos::from_micros(5)), Nanos::ZERO);
    }

    #[test]
    fn commands_serialize_fifo() {
        let mut t = Timeline::new();
        let a = t.reserve(Nanos::ZERO, Nanos::from_micros(10));
        let b = t.reserve(Nanos::ZERO, Nanos::from_micros(10));
        let c = t.reserve(Nanos::ZERO, Nanos::from_micros(10));
        assert_eq!(a.end, b.start);
        assert_eq!(b.end, c.start);
        assert_eq!(t.commands(), 3);
        assert_eq!(t.busy_time(), Nanos::from_micros(30));
    }

    #[test]
    fn gap_leaves_idle_time() {
        let mut t = Timeline::new();
        t.reserve(Nanos::ZERO, Nanos::from_micros(10));
        let r = t.reserve(Nanos::from_micros(100), Nanos::from_micros(10));
        assert_eq!(r.start, Nanos::from_micros(100));
        assert_eq!(t.free_at(), Nanos::from_micros(110));
        // Busy 20us over a 110us horizon.
        let u = t.utilization(Nanos::from_micros(110));
        assert!((u - 20.0 / 110.0).abs() < 1e-9);
    }

    #[test]
    fn zero_duration_reservation_is_instant() {
        let mut t = Timeline::new();
        let r = t.reserve(Nanos::from_micros(3), Nanos::ZERO);
        assert_eq!(r.start, r.end);
        assert_eq!(r.duration(), Nanos::ZERO);
    }

    #[test]
    fn utilization_of_empty_horizon_is_zero() {
        let t = Timeline::new();
        assert_eq!(t.utilization(Nanos::ZERO), 0.0);
    }
}
