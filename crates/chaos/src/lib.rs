//! `nob-chaos` — deterministic fault injection and crash-recovery
//! validation for the NobLSM stack.
//!
//! The crate threads a seedable fault plane through the simulated SSD
//! and Ext4 layers and validates the engine's recovery against the
//! paper's §4.4 durability claim:
//!
//! * [`plan`] — [`FaultPlan`]s (seeded probabilities or explicit
//!   schedules) executed by a [`ChaosInjector`] installed on the device,
//!   every injected lie recorded in an [`InjectionLog`].
//! * [`harness`] — replay a deterministic workload with faults live, cut
//!   power at any virtual instant (optionally snapped to journal-commit
//!   phase boundaries), recover through `Db::open` with fallback to
//!   `Db::repair`, and classify the outcome: fabricated data is *never*
//!   tolerated; lost acknowledged-durable data must be explained by the
//!   injection log.
//! * [`campaign`] — sweeps (seeds × crash points × configurations) with
//!   bit-for-bit reproducible JSON reports.
//! * [`failover`] — leader-kill sweeps over the replication stack: kill
//!   the leader at swept instants, promote the follower, and check that
//!   no acked write is lost, follower reads never go backwards, and
//!   changefeeds resume across the failover without gaps or duplicates.
//!
//! # Example
//!
//! ```
//! use nob_chaos::{ChaosCase, FaultPlan, run_case};
//!
//! let mut case = ChaosCase::new(42, 1); // seed 42, NobLSM mode
//! case.ops = 60;
//! case.plan = FaultPlan::seeded(42);
//! let result = run_case(&case);
//! assert_eq!(result.undetected_values, 0, "no silent corruption");
//! assert!(result.pass);
//! ```

pub mod campaign;
pub mod failover;
pub mod harness;
pub mod plan;

pub use campaign::{run_campaign, CampaignResult, CampaignSpec, FaultProfile};
pub use failover::{
    run_failover_campaign, run_failover_case, FailoverCampaignResult, FailoverCase,
    FailoverOutcome, FailoverSpec,
};
pub use harness::{
    config_name, config_options, prepare_run, run_case, validate_crash, CaseResult, ChaosCase,
    PreparedRun, CONFIGS,
};
pub use plan::{
    new_log, ChaosInjector, FaultKind, FaultPlan, Injection, InjectionLog, ScheduledFault,
};
