//! Leader-kill failover campaigns over the replication stack.
//!
//! Each case drives a seeded workload through a `nob-repl` leader with a
//! loopback follower and a raw changefeed on the same virtual clock,
//! kills the leader at a swept instant (expressed as a per-mille of the
//! workload), promotes the follower, fences the old epoch, and checks
//! the failover contract:
//!
//! * **No acked write is lost** — every sequence the old leader saw an
//!   acknowledgement for is present on the promoted follower, and every
//!   key whose last surviving write is at or below the applied sequence
//!   reads back with exactly that value on the new leader.
//! * **Follower reads never go backwards** — a hot key rewritten with a
//!   monotone version on every op is read throughout the run and across
//!   the promotion; the observed version never decreases.
//! * **Changefeeds resume without gaps or duplicates** — a subscription
//!   started against the old leader and resumed against the promoted
//!   follower delivers one contiguous exactly-once sequence chain, with
//!   post-failover records carrying the new epoch.
//!
//! Writes issued after the last poll round before the kill are lost with
//! the leader — they were never acknowledged, so their loss is
//! *explained*, and the campaign counts them separately from failures.
//! Reports are JSON with a stable field order and no wall-clock
//! timestamps, so a fixed spec is bit-for-bit reproducible.

use std::collections::BTreeMap;

use nob_repl::{shared, Follower, FollowerLink, Leader, ReplCore, ReplLoopback, Subscription};
use nob_sim::{Nanos, SharedClock};
use nob_store::{Store, StoreOptions};
use noblsm::{Error, ReadOptions, Result, WriteBatch, WriteOptions};

use crate::campaign::json_str;

/// One leader-kill case: a seeded workload killed at a fixed point.
#[derive(Debug, Clone)]
pub struct FailoverCase {
    /// Workload seed (keys, values, poll cadence).
    pub seed: u64,
    /// Kill instant as a per-mille of `ops` (0 is clamped to the first op).
    pub kill_pm: u32,
    /// Store shards on both sides.
    pub shards: usize,
    /// Total write ops; the tail after the kill runs on the new leader.
    pub ops: usize,
    /// Padding size of generated values, bytes.
    pub value_size: usize,
}

/// A sweep: seeds × kill points at a fixed shape.
#[derive(Debug, Clone)]
pub struct FailoverSpec {
    /// Workload seeds.
    pub seeds: Vec<u64>,
    /// Kill instants, per-mille of the op count.
    pub kill_points_pm: Vec<u32>,
    /// Store shards on both sides.
    pub shards: usize,
    /// Write ops per case.
    pub ops: usize,
    /// Value padding, bytes.
    pub value_size: usize,
}

impl FailoverSpec {
    /// CI-sized sweep: 3 seeds × 4 kill points = 12 cases.
    pub fn smoke() -> FailoverSpec {
        FailoverSpec {
            seeds: vec![1, 2, 3],
            kill_points_pm: vec![125, 500, 875, 1000],
            shards: 2,
            ops: 80,
            value_size: 24,
        }
    }

    /// Overnight sweep: 10 seeds × 8 kill points = 80 cases.
    pub fn full() -> FailoverSpec {
        FailoverSpec {
            seeds: (1..=10).collect(),
            kill_points_pm: (1..=8).map(|i| i * 125).collect(),
            shards: 4,
            ops: 200,
            value_size: 64,
        }
    }

    /// The cartesian case list, in sweep order (seed-major).
    pub fn cases(&self) -> Vec<FailoverCase> {
        let mut out = Vec::with_capacity(self.seeds.len() * self.kill_points_pm.len());
        for &seed in &self.seeds {
            for &kill_pm in &self.kill_points_pm {
                out.push(FailoverCase {
                    seed,
                    kill_pm,
                    shards: self.shards,
                    ops: self.ops,
                    value_size: self.value_size,
                });
            }
        }
        out
    }
}

/// What one case observed; `pass` is `failures.is_empty()`.
#[derive(Debug, Clone)]
pub struct FailoverOutcome {
    /// The case that produced this outcome.
    pub case: FailoverCase,
    /// Every violated invariant, human-readable. Empty means pass.
    pub failures: Vec<String>,
    /// Records the old leader had seen acks for at the kill, all shards.
    pub acked_records: u64,
    /// Sum of the follower's applied sequences at the kill.
    pub applied_seq_total: u64,
    /// Writes issued after the last poll round — lost with the leader,
    /// never acked, so their loss is explained rather than a failure.
    pub lost_unacked: u64,
    /// Distinct keys verified byte-for-byte on the promoted leader.
    pub recovered_keys: u64,
    /// Records the changefeed delivered exactly once across the failover.
    pub feed_records: u64,
    /// Epoch before and after the promotion.
    pub old_epoch: u64,
    /// The promoted leader's epoch (`old_epoch + 1`).
    pub new_epoch: u64,
}

impl FailoverOutcome {
    /// Whether every invariant held.
    pub fn pass(&self) -> bool {
        self.failures.is_empty()
    }
}

/// A finished sweep.
#[derive(Debug, Clone)]
pub struct FailoverCampaignResult {
    /// One outcome per case, in sweep order.
    pub results: Vec<FailoverOutcome>,
}

impl FailoverCampaignResult {
    /// Cases with no violated invariant.
    pub fn passed(&self) -> usize {
        self.results.iter().filter(|r| r.pass()).count()
    }

    /// Cases with at least one violated invariant.
    pub fn failed(&self) -> usize {
        self.results.len() - self.passed()
    }

    /// Deterministic JSON: stable field order, no timestamps — a fixed
    /// spec renders bit-for-bit identically on every run.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n  \"campaign\": \"failover\",\n");
        s.push_str(&format!("  \"cases\": {},\n", self.results.len()));
        s.push_str(&format!("  \"passed\": {},\n", self.passed()));
        s.push_str(&format!("  \"failed\": {},\n", self.failed()));
        s.push_str("  \"results\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            s.push_str(&outcome_json(r, "    "));
            s.push_str(if i + 1 < self.results.len() { ",\n" } else { "\n" });
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// One outcome as a JSON object at `indent`.
pub fn outcome_json(r: &FailoverOutcome, indent: &str) -> String {
    let failures: Vec<String> = r.failures.iter().map(|f| json_str(f)).collect();
    format!(
        "{indent}{{\"seed\": {}, \"kill_pm\": {}, \"shards\": {}, \"ops\": {}, \
         \"pass\": {}, \"acked_records\": {}, \"applied_seq_total\": {}, \
         \"lost_unacked\": {}, \"recovered_keys\": {}, \"feed_records\": {}, \
         \"old_epoch\": {}, \"new_epoch\": {}, \"failures\": [{}]}}",
        r.case.seed,
        r.case.kill_pm,
        r.case.shards,
        r.case.ops,
        r.pass(),
        r.acked_records,
        r.applied_seq_total,
        r.lost_unacked,
        r.recovered_keys,
        r.feed_records,
        r.old_epoch,
        r.new_epoch,
        failures.join(", ")
    )
}

/// Runs every case in `spec`, in order.
pub fn run_failover_campaign(spec: &FailoverSpec) -> FailoverCampaignResult {
    FailoverCampaignResult { results: spec.cases().iter().map(run_failover_case).collect() }
}

/// Splitmix-style step, same generator family as the crash harness.
fn lcg(state: &mut u64) -> u64 {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    let mut z = *state;
    z ^= z >> 33;
    z = z.wrapping_mul(0xff51afd7ed558ccd);
    z ^ (z >> 33)
}

/// The hot key used for the monotone-read probe.
const HOT: &[u8] = b"hot";

/// Extracts the version counter out of a hot-key value (`hot:NNNNNNNN`).
fn hot_version(v: &[u8]) -> Option<u64> {
    std::str::from_utf8(v).ok()?.strip_prefix("hot:")?.parse().ok()
}

struct Tracker {
    /// `(key, value, shard, seq)` per put, in issue order: the surviving
    /// value of a key is the last entry whose seq survived the kill.
    history: Vec<(Vec<u8>, Vec<u8>, usize, u64)>,
    /// Highest hot-key version ever observed by a read.
    hot_seen: u64,
    failures: Vec<String>,
}

impl Tracker {
    /// Records a follower/leader read of the hot key, checking that the
    /// observed version never moves backwards.
    fn observe_hot(&mut self, v: Option<Vec<u8>>, site: &str) {
        let Some(v) = v else { return };
        match hot_version(&v) {
            Some(ver) if ver < self.hot_seen => self.failures.push(format!(
                "{site} read went backwards: hot version {ver} after {}",
                self.hot_seen
            )),
            Some(ver) => self.hot_seen = ver,
            None => self.failures.push(format!("{site} read returned a malformed hot value")),
        }
    }

    /// The expected key→value map given the surviving per-shard sequences.
    fn surviving(&self, applied: &[u64]) -> BTreeMap<Vec<u8>, Vec<u8>> {
        let mut map = BTreeMap::new();
        for (k, v, shard, seq) in &self.history {
            if *seq <= applied[*shard] {
                map.insert(k.clone(), v.clone());
            }
        }
        map
    }
}

/// Writes op `i` through `leader`, recording each key's landed sequence.
fn issue_op(
    leader: &mut Leader,
    t: &mut Tracker,
    rng: &mut u64,
    i: usize,
    value_size: usize,
) -> Result<()> {
    let key = format!("k{:04}", lcg(rng) % 512).into_bytes();
    let val = format!("op{i:06}:{}", "x".repeat(value_size)).into_bytes();
    let hot = format!("hot:{i:08}").into_bytes();
    let mut batch = WriteBatch::new();
    batch.put(&key, &val);
    batch.put(HOT, &hot);
    leader.write(&WriteOptions::default(), batch)?;
    let seqs = leader.store().shard_seqs();
    for (k, v) in [(key, val), (HOT.to_vec(), hot)] {
        let shard = leader.store().shard_of(&k);
        t.history.push((k, v, shard, seqs[shard]));
    }
    Ok(())
}

/// Drains the changefeed, enforcing the contiguous exactly-once chain
/// and (when `min_epoch` is set) the post-failover epoch tag.
fn drain_feed(
    sub: &mut Subscription<ReplLoopback>,
    feed_next: &mut u64,
    feed_records: &mut u64,
    min_epoch: Option<u64>,
    failures: &mut Vec<String>,
) {
    loop {
        let recs = match sub.poll() {
            Ok(r) => r,
            Err(e) => {
                failures.push(format!("changefeed poll failed: {e}"));
                return;
            }
        };
        if recs.is_empty() {
            return;
        }
        for rec in recs {
            if rec.first_seq != *feed_next {
                failures.push(format!(
                    "changefeed chain broke: expected seq {}, delivered {}..{}",
                    feed_next, rec.first_seq, rec.last_seq
                ));
            }
            if let Some(min) = min_epoch {
                if rec.epoch < min {
                    failures
                        .push(format!("post-failover record carries epoch {} < {min}", rec.epoch));
                }
            }
            *feed_next = rec.last_seq + 1;
            *feed_records += 1;
        }
    }
}

/// Runs one leader-kill case end to end.
pub fn run_failover_case(case: &FailoverCase) -> FailoverOutcome {
    match run_failover_case_inner(case) {
        Ok(outcome) => outcome,
        Err(e) => FailoverOutcome {
            case: case.clone(),
            failures: vec![format!("harness error: {e}")],
            acked_records: 0,
            applied_seq_total: 0,
            lost_unacked: 0,
            recovered_keys: 0,
            feed_records: 0,
            old_epoch: 0,
            new_epoch: 0,
        },
    }
}

fn run_failover_case_inner(case: &FailoverCase) -> Result<FailoverOutcome> {
    let clock = SharedClock::new();
    let opts = StoreOptions { shards: case.shards, ..StoreOptions::default() };
    let leader_store = Store::open_with_clock(opts.clone(), clock.clone())?;
    let follower_store = Store::open_with_clock(opts, clock.clone())?;

    let old_epoch = 1;
    let core = shared(ReplCore::new(Leader::new(leader_store, old_epoch)));
    let mut link =
        FollowerLink::new(ReplLoopback::connect(&core), Follower::new(follower_store, old_epoch));
    link.subscribe()?;
    let mut sub = Subscription::start(ReplLoopback::connect(&core), 0, 1)?;

    let mut rng = case.seed ^ 0x9e3779b97f4a7c15;
    let mut t = Tracker { history: Vec::new(), hot_seen: 0, failures: Vec::new() };
    let mut feed_next = 1u64;
    let mut feed_records = 0u64;

    let kill_op = (case.ops * case.kill_pm as usize / 1000).clamp(1, case.ops);
    // The final ops before the kill go unpolled: they are committed on
    // the leader but never shipped, modelling in-flight loss. Varies by
    // seed so some cases kill cleanly at a poll boundary.
    let tail_silence = (case.seed % 4) as usize;
    let last_poll_op = kill_op.saturating_sub(tail_silence);

    let loose = ReadOptions::default().with_max_staleness(Nanos::from_secs(3600));
    for i in 0..kill_op {
        issue_op(core.borrow_mut().leader_mut(), &mut t, &mut rng, i, case.value_size)?;
        // Poll every third op, plus one full round at the horizon; the
        // silent tail after it is committed on the leader but never ships.
        if i < last_poll_op && (i % 3 == 2 || i + 1 == last_poll_op) {
            link.poll_until_idle()?;
            drain_feed(&mut sub, &mut feed_next, &mut feed_records, None, &mut t.failures);
            t.observe_hot(link.get(&loose, HOT)?, "follower");
        }
    }

    // ---- the kill ----------------------------------------------------
    let acked = core.borrow().leader().acked_seqs().to_vec();
    let leader_seqs = core.borrow().leader().store().shard_seqs();
    let applied = link.follower().shard_seqs();
    for s in 0..case.shards {
        if acked[s] > applied[s] {
            t.failures.push(format!(
                "shard {s}: leader acked through {} but the follower only applied {}",
                acked[s], applied[s]
            ));
        }
    }
    if feed_next != applied[0] + 1 {
        t.failures.push(format!(
            "changefeed and follower disagree on the surviving prefix: feed at {}, applied {}",
            feed_next - 1,
            applied[0]
        ));
    }
    let lost_unacked: u64 =
        leader_seqs.iter().zip(&applied).map(|(l, a)| l.saturating_sub(*a)).sum();
    let acked_records: u64 = {
        let core = core.borrow();
        (0..case.shards)
            .map(|s| match core.leader().log().records_from(s, 1) {
                Ok(recs) => recs.iter().filter(|r| r.last_seq <= acked[s]).count() as u64,
                Err(_) => 0,
            })
            .sum()
    };

    // Promote; fence the old leader and prove the fence holds.
    let mut new_leader = link.into_follower().promote();
    let new_epoch = new_leader.epoch();
    if new_epoch != old_epoch + 1 {
        t.failures
            .push(format!("promotion produced epoch {new_epoch}, expected {}", old_epoch + 1));
    }
    {
        let mut old = core.borrow_mut();
        if !old.leader_mut().fence(new_epoch) {
            t.failures.push("old leader did not fence on observing the new epoch".into());
        }
        let mut b = WriteBatch::new();
        b.put(b"zombie", b"write");
        match old.leader_mut().write(&WriteOptions::default(), b) {
            Err(Error::Replication(_)) => {}
            other => t
                .failures
                .push(format!("fenced leader accepted a write (or failed oddly): {other:?}")),
        }
    }
    drop(core);

    // The old leader's tail writes died with it; the new timeline will
    // reuse their sequence numbers, so drop them from the history before
    // any further bookkeeping keys off sequences.
    t.history.retain(|(_, _, shard, seq)| *seq <= applied[*shard]);

    // No acked write lost: every surviving key reads back byte-for-byte.
    let expected = t.surviving(&applied);
    let mut recovered_keys = 0u64;
    for (k, v) in &expected {
        match new_leader.store_mut().get(&ReadOptions::default(), k)? {
            Some(got) if got == *v => recovered_keys += 1,
            Some(_) => t.failures.push(format!(
                "key {:?} survived with the wrong value",
                String::from_utf8_lossy(k)
            )),
            None => t
                .failures
                .push(format!("acked key {:?} lost across failover", String::from_utf8_lossy(k))),
        }
    }
    // The promoted leader's read of the hot key must not go backwards
    // either — it IS the surviving follower state.
    let hot = new_leader.store_mut().get(&ReadOptions::default(), HOT)?;
    t.observe_hot(hot, "promoted leader");

    // ---- life after the failover -------------------------------------
    let new_core = shared(ReplCore::new(new_leader));
    sub = sub.resume(ReplLoopback::connect(&new_core))?;
    for i in kill_op..case.ops {
        issue_op(new_core.borrow_mut().leader_mut(), &mut t, &mut rng, i, case.value_size)?;
    }
    drain_feed(&mut sub, &mut feed_next, &mut feed_records, Some(new_epoch), &mut t.failures);
    {
        let mut nc = new_core.borrow_mut();
        let final_seqs = nc.leader().store().shard_seqs();
        if feed_next != final_seqs[0] + 1 {
            t.failures.push(format!(
                "changefeed ended at seq {} but shard 0 committed through {}",
                feed_next - 1,
                final_seqs[0]
            ));
        }
        // Every post-failover write is synchronous and must read back.
        let post = t.surviving(&final_seqs);
        for (k, v) in &post {
            if nc.leader_mut().store_mut().get(&ReadOptions::default(), k)?.as_deref() != Some(v) {
                t.failures.push(format!(
                    "post-failover key {:?} does not read back",
                    String::from_utf8_lossy(k)
                ));
            }
        }
        t.observe_hot(nc.leader_mut().store_mut().get(&ReadOptions::default(), HOT)?, "new leader");
    }

    Ok(FailoverOutcome {
        case: case.clone(),
        failures: t.failures,
        acked_records,
        applied_seq_total: applied.iter().sum(),
        lost_unacked,
        recovered_keys,
        feed_records,
        old_epoch,
        new_epoch,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_is_green() {
        let result = run_failover_campaign(&FailoverSpec::smoke());
        let bad: Vec<_> = result.results.iter().filter(|r| !r.pass()).collect();
        assert!(bad.is_empty(), "failing cases: {bad:?}");
        assert_eq!(result.results.len(), 12);
        // The sweep must actually exercise the machinery.
        assert!(result.results.iter().all(|r| r.recovered_keys > 0));
        assert!(result.results.iter().all(|r| r.feed_records > 0));
        assert!(result.results.iter().all(|r| r.new_epoch == 2));
        // At least one seed leaves in-flight writes behind (explained loss).
        assert!(result.results.iter().any(|r| r.lost_unacked > 0));
    }

    #[test]
    fn kill_at_the_edges_still_promotes() {
        for kill_pm in [0, 1000] {
            let case = FailoverCase { seed: 7, kill_pm, shards: 2, ops: 40, value_size: 16 };
            let r = run_failover_case(&case);
            assert!(r.pass(), "kill_pm={kill_pm}: {:?}", r.failures);
            assert_eq!(r.new_epoch, 2);
        }
    }

    #[test]
    fn report_is_bit_for_bit_reproducible() {
        let spec = FailoverSpec {
            seeds: vec![11, 12],
            kill_points_pm: vec![300, 700],
            shards: 2,
            ops: 48,
            value_size: 16,
        };
        let a = run_failover_campaign(&spec).to_json();
        let b = run_failover_campaign(&spec).to_json();
        assert_eq!(a, b, "fixed-spec failover sweep must be bit-for-bit stable");
        assert!(a.contains("\"campaign\": \"failover\""));
        assert!(a.contains("\"passed\": 4"));
    }
}
