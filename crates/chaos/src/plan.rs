//! Fault plans: deterministic, seedable schedules of device faults.
//!
//! A [`FaultPlan`] describes *which* commands to betray and *how*; a
//! [`ChaosInjector`] executes the plan as a [`FaultInjector`] installed on
//! the simulated SSD, recording every injected fault into an
//! [`InjectionLog`] so the harness can later separate explained loss from
//! silent loss. All randomness flows from the plan's seed through a
//! dedicated RNG consumed in command order, so the same plan over the
//! same workload reproduces the same fault schedule bit-for-bit.

use std::sync::{Arc, Mutex};

use nob_sim::Nanos;
use nob_ssd::{FaultInjector, FlushCmd, FlushFault, WriteClass, WriteCmd, WriteFault};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The three lies the fault plane can tell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Only a prefix of a write reaches stable media.
    TornWrite,
    /// A write lands but its payload is silently damaged.
    CorruptWrite,
    /// A FLUSH is acknowledged without draining the volatile cache.
    DroppedFlush,
}

impl FaultKind {
    /// Stable lowercase name, used in JSON output.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::TornWrite => "torn_write",
            FaultKind::CorruptWrite => "corrupt_write",
            FaultKind::DroppedFlush => "dropped_flush",
        }
    }
}

/// One explicitly scheduled fault: betray the `nth` (0-based) command of
/// the matching kind — writes for torn/corrupt, FLUSHes for dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledFault {
    /// 0-based index among commands of the targeted kind.
    pub nth: u64,
    /// What to do to that command.
    pub kind: FaultKind,
}

/// A deterministic fault schedule.
///
/// Faults come from two sources, checked in order:
///
/// 1. **Explicit schedule** — [`ScheduledFault`]s pinned to command
///    indices, for reproducing a specific scenario exactly.
/// 2. **Seeded probabilities** — per-mille rates drawn from the plan's
///    own RNG, for campaign-scale coverage.
///
/// `class`, `window` and `max_faults` constrain both sources.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for the probability draws.
    pub seed: u64,
    /// Per-mille chance a matching write is torn.
    pub torn_write_pm: u32,
    /// Per-mille chance a matching write is corrupted.
    pub corrupt_write_pm: u32,
    /// Per-mille chance a matching FLUSH is dropped-but-acked.
    pub dropped_flush_pm: u32,
    /// Restrict write faults to one command class (`None` = any class).
    pub class: Option<WriteClass>,
    /// Only inject inside this virtual-time window (`None` = always).
    pub window: Option<(Nanos, Nanos)>,
    /// Stop injecting after this many faults (0 = unlimited).
    pub max_faults: u64,
    /// Explicitly scheduled faults.
    pub scheduled: Vec<ScheduledFault>,
}

impl FaultPlan {
    /// A plan that injects nothing — the pure power-cut baseline.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            torn_write_pm: 0,
            corrupt_write_pm: 0,
            dropped_flush_pm: 0,
            class: None,
            window: None,
            max_faults: 0,
            scheduled: Vec::new(),
        }
    }

    /// A moderate seeded plan: a few per-mille of every lie, any class,
    /// capped so a long run is degraded rather than annihilated.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            torn_write_pm: 8,
            corrupt_write_pm: 8,
            dropped_flush_pm: 20,
            class: None,
            window: None,
            max_faults: 6,
            scheduled: Vec::new(),
        }
    }

    /// Whether this plan can ever inject anything.
    pub fn is_none(&self) -> bool {
        self.scheduled.is_empty()
            && self.torn_write_pm == 0
            && self.corrupt_write_pm == 0
            && self.dropped_flush_pm == 0
    }

    /// Restricts write faults to one command class.
    pub fn with_class(mut self, class: WriteClass) -> Self {
        self.class = Some(class);
        self
    }

    /// Restricts injection to a virtual-time window.
    pub fn with_window(mut self, from: Nanos, to: Nanos) -> Self {
        self.window = Some((from, to));
        self
    }

    /// Adds an explicitly scheduled fault.
    pub fn with_scheduled(mut self, nth: u64, kind: FaultKind) -> Self {
        self.scheduled.push(ScheduledFault { nth, kind });
        self
    }
}

/// One injected fault, as recorded for the harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Injection {
    /// Virtual instant of the betrayed command.
    pub at: Nanos,
    /// What was done.
    pub kind: FaultKind,
    /// The betrayed write's class (`None` for FLUSH faults).
    pub class: Option<WriteClass>,
    /// Payload size of the betrayed write (0 for FLUSH faults).
    pub bytes: u64,
    /// Durable prefix kept by a torn write (0 otherwise).
    pub keep: u64,
}

/// Shared record of everything a [`ChaosInjector`] did, readable by the
/// harness after the run.
pub type InjectionLog = Arc<Mutex<Vec<Injection>>>;

/// Creates an empty injection log.
pub fn new_log() -> InjectionLog {
    Arc::new(Mutex::new(Vec::new()))
}

/// Executes a [`FaultPlan`] against the device command stream.
#[derive(Debug)]
pub struct ChaosInjector {
    plan: FaultPlan,
    rng: SmallRng,
    writes_seen: u64,
    flushes_seen: u64,
    injected: u64,
    log: InjectionLog,
}

impl ChaosInjector {
    /// Builds an injector for `plan`, recording into `log`.
    pub fn new(plan: FaultPlan, log: InjectionLog) -> Self {
        let rng = SmallRng::seed_from_u64(plan.seed ^ 0xC0FF_EE00_C0FF_EE00);
        ChaosInjector { plan, rng, writes_seen: 0, flushes_seen: 0, injected: 0, log }
    }

    fn capped(&self) -> bool {
        self.plan.max_faults != 0 && self.injected >= self.plan.max_faults
    }

    fn in_window(&self, at: Nanos) -> bool {
        match self.plan.window {
            Some((from, to)) => at >= from && at < to,
            None => true,
        }
    }

    fn record(&mut self, inj: Injection) {
        self.injected += 1;
        self.log.lock().unwrap_or_else(|p| p.into_inner()).push(inj);
    }
}

impl FaultInjector for ChaosInjector {
    fn on_write(&mut self, cmd: &WriteCmd) -> WriteFault {
        let idx = self.writes_seen;
        self.writes_seen += 1;
        // Consume the probability draw unconditionally so verdict choices
        // never shift the RNG stream for later commands.
        let roll: u32 = self.rng.gen_range(0..1000);
        let tear_keep: u64 = if cmd.bytes > 0 { self.rng.gen_range(0..cmd.bytes) } else { 0 };
        if self.capped() || !self.in_window(cmd.at) {
            return WriteFault::None;
        }
        let class_ok = self.plan.class.is_none_or(|c| c == cmd.class);
        let scheduled = self.plan.scheduled.iter().find(|s| {
            s.nth == idx && matches!(s.kind, FaultKind::TornWrite | FaultKind::CorruptWrite)
        });
        let kind = if let Some(s) = scheduled {
            Some(s.kind)
        } else if !class_ok {
            None
        } else if roll < self.plan.torn_write_pm {
            Some(FaultKind::TornWrite)
        } else if roll < self.plan.torn_write_pm + self.plan.corrupt_write_pm {
            Some(FaultKind::CorruptWrite)
        } else {
            None
        };
        match kind {
            Some(FaultKind::TornWrite) => {
                self.record(Injection {
                    at: cmd.at,
                    kind: FaultKind::TornWrite,
                    class: Some(cmd.class),
                    bytes: cmd.bytes,
                    keep: tear_keep,
                });
                WriteFault::Torn { keep: tear_keep }
            }
            Some(FaultKind::CorruptWrite) => {
                self.record(Injection {
                    at: cmd.at,
                    kind: FaultKind::CorruptWrite,
                    class: Some(cmd.class),
                    bytes: cmd.bytes,
                    keep: 0,
                });
                WriteFault::Corrupt
            }
            _ => WriteFault::None,
        }
    }

    fn on_flush(&mut self, cmd: &FlushCmd) -> FlushFault {
        let idx = self.flushes_seen;
        self.flushes_seen += 1;
        let roll: u32 = self.rng.gen_range(0..1000);
        if self.capped() || !self.in_window(cmd.at) {
            return FlushFault::None;
        }
        let scheduled =
            self.plan.scheduled.iter().any(|s| s.nth == idx && s.kind == FaultKind::DroppedFlush);
        if scheduled || roll < self.plan.dropped_flush_pm {
            self.record(Injection {
                at: cmd.at,
                kind: FaultKind::DroppedFlush,
                class: None,
                bytes: 0,
                keep: 0,
            });
            FlushFault::DroppedAcked
        } else {
            FlushFault::None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wcmd(at: u64, bytes: u64) -> WriteCmd {
        WriteCmd { at: Nanos::from_nanos(at), bytes, background: false, class: WriteClass::Data }
    }

    fn fcmd(at: u64) -> FlushCmd {
        FlushCmd { at: Nanos::from_nanos(at), background: false }
    }

    #[test]
    fn same_seed_same_schedule() {
        let run = |seed| {
            let log = new_log();
            let mut inj = ChaosInjector::new(FaultPlan::seeded(seed), log.clone());
            let mut verdicts = Vec::new();
            for i in 0..500u64 {
                verdicts.push(inj.on_write(&wcmd(i, 4096)));
                if i % 7 == 0 {
                    inj.on_flush(&fcmd(i));
                }
            }
            let injections = log.lock().unwrap().clone();
            (verdicts, injections)
        };
        assert_eq!(run(7), run(7), "fixed seed must reproduce bit-for-bit");
        assert_ne!(run(7).1, run(8).1, "different seeds must differ");
    }

    #[test]
    fn scheduled_fault_hits_exact_command() {
        let log = new_log();
        let plan = FaultPlan::none().with_scheduled(2, FaultKind::CorruptWrite);
        let mut inj = ChaosInjector::new(plan, log.clone());
        let verdicts: Vec<_> = (0..4).map(|i| inj.on_write(&wcmd(i, 64))).collect();
        assert_eq!(verdicts[0], WriteFault::None);
        assert_eq!(verdicts[1], WriteFault::None);
        assert_eq!(verdicts[2], WriteFault::Corrupt);
        assert_eq!(verdicts[3], WriteFault::None);
        assert_eq!(log.lock().unwrap().len(), 1);
    }

    #[test]
    fn max_faults_caps_injection() {
        let log = new_log();
        let mut plan = FaultPlan::seeded(3);
        plan.dropped_flush_pm = 1000; // every flush
        plan.max_faults = 2;
        let mut inj = ChaosInjector::new(plan, log.clone());
        for i in 0..10 {
            inj.on_flush(&fcmd(i));
        }
        assert_eq!(log.lock().unwrap().len(), 2);
    }

    #[test]
    fn window_gates_injection() {
        let log = new_log();
        let mut plan = FaultPlan::none();
        plan.dropped_flush_pm = 1000;
        plan.window = Some((Nanos::from_nanos(5), Nanos::from_nanos(7)));
        let mut inj = ChaosInjector::new(plan, log.clone());
        for i in 0..10 {
            inj.on_flush(&fcmd(i));
        }
        let injections = log.lock().unwrap().clone();
        assert_eq!(injections.len(), 2);
        assert!(injections.iter().all(|j| j.at >= Nanos::from_nanos(5)));
    }

    #[test]
    fn class_filter_limits_targets() {
        let log = new_log();
        let mut plan = FaultPlan::none();
        plan.corrupt_write_pm = 1000;
        plan.class = Some(WriteClass::Journal);
        let mut inj = ChaosInjector::new(plan, log.clone());
        assert_eq!(inj.on_write(&wcmd(0, 64)), WriteFault::None, "Data writes exempt");
        let j =
            WriteCmd { at: Nanos::ZERO, bytes: 64, background: false, class: WriteClass::Journal };
        assert_eq!(inj.on_write(&j), WriteFault::Corrupt);
    }
}
