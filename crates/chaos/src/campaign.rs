//! Sweep campaigns: N seeds × M crash points × K configurations, each
//! workload run once and crashed at every requested instant, with a
//! machine-readable JSON report. Everything is derived from the spec's
//! seeds over virtual time, so a fixed spec reproduces its report
//! bit-for-bit.

use crate::harness::{config_name, prepare_run, validate_crash, CaseResult, ChaosCase, CONFIGS};
use crate::plan::FaultPlan;
use nob_trace::{EventClass, Histogram, TraceSink};

/// Which fault schedules a campaign applies per case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultProfile {
    /// Pure power cuts — strict durability everywhere.
    PowerCut,
    /// Seeded device lies on every run.
    DeviceLies,
    /// Alternate by seed: even seeds power-cut, odd seeds device lies.
    Mixed,
}

impl FaultProfile {
    /// Stable lowercase name, used in JSON output.
    pub fn name(self) -> &'static str {
        match self {
            FaultProfile::PowerCut => "power_cut",
            FaultProfile::DeviceLies => "device_lies",
            FaultProfile::Mixed => "mixed",
        }
    }

    /// Parses a profile name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "power_cut" => Some(FaultProfile::PowerCut),
            "device_lies" => Some(FaultProfile::DeviceLies),
            "mixed" => Some(FaultProfile::Mixed),
            _ => None,
        }
    }
}

/// A full sweep specification.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// Workload seeds; one run per (seed, config).
    pub seeds: Vec<u64>,
    /// Crash points in per-mille of each run's duration.
    pub crash_points_pm: Vec<u32>,
    /// Configuration selectors (see [`crate::harness::config_options`]).
    pub configs: Vec<usize>,
    /// Operations per workload.
    pub ops: usize,
    /// Value payload size.
    pub value_size: usize,
    /// Fault schedule policy.
    pub profile: FaultProfile,
    /// Snap crash points to journal-commit phase boundaries.
    pub snap_to_commit_phase: bool,
}

impl CampaignSpec {
    /// The acceptance sweep: 5 seeds × 10 crash points × all 4 configs =
    /// 200 cases, mixed fault profile.
    pub fn full() -> Self {
        CampaignSpec {
            seeds: (1..=5).collect(),
            crash_points_pm: (1..=10).map(|i| i * 100).collect(),
            configs: (0..CONFIGS).collect(),
            ops: 120,
            value_size: 64,
            profile: FaultProfile::Mixed,
            snap_to_commit_phase: false,
        }
    }

    /// A CI-sized smoke sweep: 2 seeds × 3 crash points × all 4 configs.
    pub fn smoke() -> Self {
        CampaignSpec {
            seeds: vec![1, 2],
            crash_points_pm: vec![250, 600, 950],
            configs: (0..CONFIGS).collect(),
            ops: 60,
            value_size: 64,
            profile: FaultProfile::Mixed,
            snap_to_commit_phase: false,
        }
    }

    /// Number of cases this spec expands to.
    pub fn cases(&self) -> usize {
        self.seeds.len() * self.crash_points_pm.len() * self.configs.len()
    }

    /// The fault plan for one (seed, config) run. Independent of the
    /// crash point so every crash instant probes the *same* execution.
    fn plan_for(&self, seed: u64, config: usize) -> FaultPlan {
        let fault = match self.profile {
            FaultProfile::PowerCut => false,
            FaultProfile::DeviceLies => true,
            FaultProfile::Mixed => seed % 2 == 1,
        };
        if fault {
            // Mix config into the plan seed so layouts see distinct lies.
            FaultPlan::seeded(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ config as u64)
        } else {
            FaultPlan::none()
        }
    }
}

/// Per-class latency histograms merged across a group of runs, in
/// `EventClass` discriminant order.
pub type ClassHists = Vec<(EventClass, Histogram)>;

/// Folds one run's trace into a group's merged per-class histograms.
fn merge_run(into: &mut ClassHists, sink: &TraceSink) {
    for class in EventClass::ALL {
        let h = sink.histogram(class);
        if h.is_empty() {
            continue;
        }
        match into.iter_mut().find(|(c, _)| *c == class) {
            Some((_, acc)) => acc.merge(&h),
            None => {
                let at = into.partition_point(|(c, _)| (*c as u8) < (class as u8));
                into.insert(at, (class, h));
            }
        }
    }
}

/// The outcome of a sweep.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// The spec the sweep ran.
    pub spec: CampaignSpec,
    /// Every case, in deterministic (config, seed, crash point) order.
    pub results: Vec<CaseResult>,
    /// Per-class latency histograms merged across fault-free runs.
    pub clean_hists: ClassHists,
    /// The same, across runs whose device carried a fault plan — the
    /// fault classes (torn/corrupt writes, dropped FLUSHes) only appear
    /// here, alongside the operation latencies they distorted.
    pub faulted_hists: ClassHists,
}

impl CampaignResult {
    /// Cases that passed.
    pub fn passed(&self) -> usize {
        self.results.iter().filter(|r| r.pass).count()
    }

    /// Cases that failed.
    pub fn failed(&self) -> usize {
        self.results.len() - self.passed()
    }

    /// Total fabricated values recovered anywhere — must be zero.
    pub fn undetected_total(&self) -> usize {
        self.results.iter().map(|r| r.undetected_values).sum()
    }

    /// Acked losses that the injection log could not explain.
    pub fn unexplained_losses(&self) -> usize {
        self.results.iter().filter(|r| r.lost_acked > 0 && !r.explained).map(|r| r.lost_acked).sum()
    }

    /// Serializes the sweep to JSON (stable field order, no timestamps,
    /// so identical sweeps yield identical bytes).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096 + 512 * self.results.len());
        out.push_str("{\n");
        out.push_str(&format!("  \"profile\": {},\n", json_str(self.spec.profile.name())));
        out.push_str(&format!("  \"seeds\": {},\n", json_u64s(&self.spec.seeds)));
        out.push_str(&format!(
            "  \"crash_points_pm\": {},\n",
            json_u64s(&self.spec.crash_points_pm.iter().map(|&c| c as u64).collect::<Vec<_>>())
        ));
        out.push_str(&format!(
            "  \"configs\": [{}],\n",
            self.spec
                .configs
                .iter()
                .map(|&c| json_str(config_name(c)))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        out.push_str(&format!("  \"ops\": {},\n", self.spec.ops));
        out.push_str(&format!("  \"value_size\": {},\n", self.spec.value_size));
        out.push_str(&format!("  \"cases\": {},\n", self.results.len()));
        out.push_str(&format!("  \"passed\": {},\n", self.passed()));
        out.push_str(&format!("  \"failed\": {},\n", self.failed()));
        out.push_str(&format!("  \"undetected_values\": {},\n", self.undetected_total()));
        out.push_str(&format!("  \"unexplained_losses\": {},\n", self.unexplained_losses()));
        out.push_str("  \"latency_histograms\": {\n");
        out.push_str(&hists_json("clean", &self.clean_hists, "    "));
        out.push_str(",\n");
        out.push_str(&hists_json("faulted", &self.faulted_hists, "    "));
        out.push_str("\n  },\n");
        out.push_str("  \"results\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            out.push_str(&case_json(r, "    "));
            out.push_str(if i + 1 < self.results.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Runs a sweep: each (config, seed) workload executes once; every crash
/// point probes it via a fresh crash view.
pub fn run_campaign(spec: &CampaignSpec) -> CampaignResult {
    let mut results = Vec::with_capacity(spec.cases());
    let mut clean_hists = ClassHists::new();
    let mut faulted_hists = ClassHists::new();
    for &config in &spec.configs {
        for &seed in &spec.seeds {
            let case = ChaosCase {
                seed,
                config,
                ops: spec.ops,
                value_size: spec.value_size,
                crash_pm: 0,
                snap_to_commit_phase: spec.snap_to_commit_phase,
                lanes: 1,
                plan: spec.plan_for(seed, config),
            };
            let run = prepare_run(&case);
            let group = if case.plan.is_none() { &mut clean_hists } else { &mut faulted_hists };
            merge_run(group, &run.trace);
            for &pm in &spec.crash_points_pm {
                let mut r = validate_crash(&run, pm, spec.snap_to_commit_phase);
                r.seed = seed;
                r.config = config;
                r.faulted_plan = !case.plan.is_none();
                results.push(r);
            }
        }
    }
    CampaignResult { spec: spec.clone(), results, clean_hists, faulted_hists }
}

/// Serializes one histogram group as a named JSON object of per-class
/// percentile entries.
fn hists_json(name: &str, hists: &ClassHists, indent: &str) -> String {
    let mut s = format!("{indent}\"{name}\": {{");
    for (i, (class, h)) in hists.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let (p50, p95, p99, p999) = h.percentiles();
        s.push_str(&format!(
            "\n{indent}  \"{}\": {{\"count\": {}, \"min_ns\": {}, \"max_ns\": {}, \
             \"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}}}",
            class.name(),
            h.count(),
            h.min(),
            h.max(),
            p50,
            p95,
            p99,
            p999
        ));
    }
    if !hists.is_empty() {
        s.push('\n');
        s.push_str(indent);
    }
    s.push('}');
    s
}

/// Serializes one case result as a JSON object.
pub fn case_json(r: &CaseResult, indent: &str) -> String {
    let mut s = String::with_capacity(512);
    s.push_str(indent);
    s.push('{');
    s.push_str(&format!("\"seed\": {}, ", r.seed));
    s.push_str(&format!("\"config\": {}, ", json_str(config_name(r.config))));
    s.push_str(&format!("\"crash_pm\": {}, ", r.crash_pm));
    s.push_str(&format!("\"crash_at_ns\": {}, ", r.crash_at.as_nanos()));
    s.push_str(&format!("\"run_end_ns\": {}, ", r.run_end.as_nanos()));
    s.push_str(&format!("\"faulted_plan\": {}, ", r.faulted_plan));
    s.push_str(&format!(
        "\"injections\": [{}], ",
        r.injections
            .iter()
            .map(|i| format!(
                "{{\"at_ns\": {}, \"kind\": {}, \"bytes\": {}, \"keep\": {}}}",
                i.at.as_nanos(),
                json_str(i.kind.name()),
                i.bytes,
                i.keep
            ))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    s.push_str(&format!("\"acked_pairs\": {}, ", r.acked_pairs));
    s.push_str(&format!("\"lost_acked\": {}, ", r.lost_acked));
    s.push_str(&format!("\"undetected_values\": {}, ", r.undetected_values));
    s.push_str(&format!("\"recovered_keys\": {}, ", r.recovered_keys));
    s.push_str(&format!("\"repaired\": {}, ", r.repaired));
    s.push_str(&format!(
        "\"open_error\": {}, ",
        r.open_error.as_deref().map_or("null".to_string(), json_str)
    ));
    s.push_str(&format!(
        "\"recovery_failed\": {}, ",
        r.recovery_failed.as_deref().map_or("null".to_string(), json_str)
    ));
    s.push_str(&format!(
        "\"invariant_error\": {}, ",
        r.invariant_error.as_deref().map_or("null".to_string(), json_str)
    ));
    s.push_str(&format!("\"wal_corruptions_detected\": {}, ", r.wal_corruptions_detected));
    s.push_str(&format!("\"wal_bytes_dropped\": {}, ", r.wal_bytes_dropped));
    s.push_str(&format!("\"wal_records_recovered\": {}, ", r.wal_records_recovered));
    s.push_str(&format!("\"tables_skipped\": {}, ", r.tables_skipped));
    s.push_str(&format!("\"ordered_violations\": {}, ", r.ordered_violations));
    s.push_str(&format!("\"journal_broken\": {}, ", r.journal_broken));
    s.push_str(&format!("\"shadow_files\": {}, ", r.shadow_files));
    s.push_str(&format!("\"reclaimed_files\": {}, ", r.reclaimed_files));
    s.push_str(&format!("\"explained\": {}, ", r.explained));
    s.push_str(&format!("\"pass\": {}", r.pass));
    s.push('}');
    s
}

/// Escapes a string for JSON.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Serializes a slice of integers as a JSON array.
fn json_u64s(v: &[u64]) -> String {
    let items: Vec<String> = v.iter().map(|x| x.to_string()).collect();
    format!("[{}]", items.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_campaign_passes_and_reproduces() {
        let spec = CampaignSpec::smoke();
        let a = run_campaign(&spec);
        assert_eq!(a.results.len(), spec.cases());
        assert_eq!(a.failed(), 0, "smoke sweep must be green: {}", a.to_json());
        assert_eq!(a.undetected_total(), 0);
        assert_eq!(a.unexplained_losses(), 0);
        let b = run_campaign(&spec);
        assert_eq!(a.to_json(), b.to_json(), "fixed-seed sweep must be bit-for-bit stable");
    }

    #[test]
    fn campaign_reports_clean_vs_faulted_latency_histograms() {
        let a = run_campaign(&CampaignSpec::smoke());
        // Mixed profile: even seeds run clean, odd seeds carry faults —
        // both groups must have merged engine/device latency histograms.
        assert!(!a.clean_hists.is_empty(), "clean runs must trace");
        assert!(!a.faulted_hists.is_empty(), "faulted runs must trace");
        let has = |hs: &ClassHists, c: EventClass| hs.iter().any(|(k, _)| *k == c);
        assert!(has(&a.clean_hists, EventClass::EnginePut));
        assert!(has(&a.faulted_hists, EventClass::EnginePut));
        // Fault classes may only ever appear in the faulted group.
        for c in [
            EventClass::FaultTornWrite,
            EventClass::FaultCorruptWrite,
            EventClass::FaultDroppedFlush,
        ] {
            assert!(!has(&a.clean_hists, c), "{} in clean group", c.name());
        }
        assert!(
            has(&a.faulted_hists, EventClass::FaultTornWrite)
                || has(&a.faulted_hists, EventClass::FaultCorruptWrite)
                || has(&a.faulted_hists, EventClass::FaultDroppedFlush),
            "seeded fault plans must inject at least one device fault"
        );
        let json = a.to_json();
        assert!(json.contains("\"latency_histograms\""));
        assert!(json.contains("\"clean\""));
        assert!(json.contains("\"faulted\""));
    }

    #[test]
    fn json_escaping_is_sound() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }
}
