//! The recovery-validation harness: replay a deterministic workload with
//! faults live on the device, cut power at a chosen virtual instant,
//! recover through the engine's normal open path (falling back to
//! repair), and check the paper's §4.4 invariant — every KV pair
//! acknowledged durable before the cut is still there afterwards — plus
//! the stricter meta-invariant that *no* loss is ever silent: a missing
//! acked pair must be explained by the injection log, and a recovered
//! value must be one the application actually wrote.

use std::collections::HashMap;

use nob_ext4::{Ext4Config, Ext4Fs};
use nob_sim::Nanos;
use nob_trace::TraceSink;
use noblsm::{CompactionStyle, Db, DbStats, Options, SyncMode};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::plan::{new_log, ChaosInjector, FaultPlan, Injection, InjectionLog};
use nob_ssd::InjectorHandle;

/// Directory the harness keeps its database under.
const DB_DIR: &str = "db";

/// The four sync/layout configurations the sweeps cover, mirroring the
/// crash property tests: 0 = Always, 1 = NobLsm, 2 = Always+Fragmented,
/// 3 = NobLsm+grouped-output.
pub const CONFIGS: usize = 4;

/// One durability acknowledgement: the instant a `flush` returned and the
/// full key → value state acknowledged durable at that instant.
pub type AckSnapshot = (Nanos, HashMap<Vec<u8>, Vec<u8>>);

/// What [`try_recover`] yields: post-recovery stats, any invariant-check
/// error, and the full recovered key → value dump.
type Recovered = (DbStats, Option<String>, HashMap<Vec<u8>, Vec<u8>>);

/// Stable name for a configuration selector.
pub fn config_name(sel: usize) -> &'static str {
    match sel % CONFIGS {
        0 => "always",
        1 => "noblsm",
        2 => "always_fragmented",
        _ => "noblsm_grouped",
    }
}

/// Engine options for a configuration selector: small tables and levels
/// so short workloads still exercise compactions.
pub fn config_options(sel: usize) -> Options {
    let mode = match sel % CONFIGS {
        1 | 3 => SyncMode::NobLsm,
        _ => SyncMode::Always,
    };
    let mut o = Options::default().with_sync_mode(mode).with_table_size(8 << 10);
    o.level1_max_bytes = 32 << 10;
    match sel % CONFIGS {
        2 => o.style = CompactionStyle::Fragmented,
        3 => o.grouped_output = true,
        _ => {}
    }
    o
}

/// One fully specified chaos experiment.
#[derive(Debug, Clone)]
pub struct ChaosCase {
    /// Workload seed; also salts the fault plan.
    pub seed: u64,
    /// Configuration selector (see [`config_options`]).
    pub config: usize,
    /// Number of workload operations.
    pub ops: usize,
    /// Value payload size in bytes.
    pub value_size: usize,
    /// Crash instant as per-mille of the run's virtual duration.
    pub crash_pm: u32,
    /// Snap the crash instant to the nearest earlier journal-commit phase
    /// boundary (start / data-done / journal-done / end), to aim the cut
    /// precisely at the windows the Ext4 ordered contract protects.
    pub snap_to_commit_phase: bool,
    /// Compaction lanes for the engine under test; >1 aims crashes at
    /// runs with several majors in flight at once.
    pub lanes: usize,
    /// The fault schedule.
    pub plan: FaultPlan,
}

impl ChaosCase {
    /// A baseline case: moderate workload, mid-run crash, no faults.
    pub fn new(seed: u64, config: usize) -> Self {
        ChaosCase {
            seed,
            config,
            ops: 120,
            value_size: 64,
            crash_pm: 500,
            snap_to_commit_phase: false,
            lanes: 1,
            plan: FaultPlan::none(),
        }
    }
}

/// A workload run held open so several crash points can be probed
/// without re-running it: the original (never crashed) filesystem plus
/// everything the harness learned while driving it.
pub struct PreparedRun {
    /// The live filesystem; `crashed_view` is non-destructive.
    pub fs: Ext4Fs,
    /// Engine options used (recovery must reuse them).
    pub opts: Options,
    /// Every value ever written per key.
    pub history: HashMap<Vec<u8>, Vec<Vec<u8>>>,
    /// Start instant of every delete issued per key.
    pub deletes: HashMap<Vec<u8>, Vec<Nanos>>,
    /// Durability acknowledgements: after each completed `flush`, the
    /// instant it returned and the full acknowledged state.
    pub acks: Vec<AckSnapshot>,
    /// Virtual end of the run.
    pub end: Nanos,
    /// Everything the injector did.
    pub log: InjectionLog,
    /// Engine stats at end of run (shadow accounting lives here).
    pub final_stats: DbStats,
    /// Journal-commit windows observed, for phase-aligned crash points.
    pub windows: Vec<nob_ext4::CommitWindow>,
    /// First broken journal commit, if a fault severed the chain.
    pub journal_broken: Option<Nanos>,
    /// Operations actually applied.
    pub ops_applied: usize,
    /// Trace of the whole run (all three layers, fault classes
    /// included); campaigns merge these into per-class histograms.
    pub trace: TraceSink,
}

/// Key for workload slot `k`.
fn kname(k: u16) -> Vec<u8> {
    format!("key{k:05}").into_bytes()
}

/// Value for slot `k`, version `v`, padded to `size`.
fn vname(k: u16, v: u16, size: usize) -> Vec<u8> {
    let mut out = format!("value-{k}-{v}-").into_bytes();
    let target = size.max(out.len());
    out.resize(target, b'p');
    out
}

/// Replays the case's workload against a fresh stack with the fault plan
/// live on the device, recording history and durability acks.
pub fn prepare_run(case: &ChaosCase) -> PreparedRun {
    let fs = Ext4Fs::new(Ext4Config::default().with_page_cache(4 << 20));
    let mut opts = config_options(case.config);
    opts.compaction_lanes = case.lanes.max(1);
    let mut db =
        Db::open(fs.clone(), DB_DIR, opts.clone(), Nanos::ZERO).expect("fresh open cannot fail");
    let trace = TraceSink::new();
    db.set_trace_sink(trace.clone());
    let log = new_log();
    if !case.plan.is_none() {
        fs.set_fault_injector(InjectorHandle::new(ChaosInjector::new(
            case.plan.clone(),
            log.clone(),
        )));
    }

    let mut rng = SmallRng::seed_from_u64(case.seed);
    let mut model: HashMap<Vec<u8>, Option<Vec<u8>>> = HashMap::new();
    let mut history: HashMap<Vec<u8>, Vec<Vec<u8>>> = HashMap::new();
    let mut deletes: HashMap<Vec<u8>, Vec<Nanos>> = HashMap::new();
    let mut acks: Vec<AckSnapshot> = Vec::new();
    let mut now = Nanos::ZERO;
    let mut applied = 0usize;
    for _ in 0..case.ops {
        let roll: u32 = rng.gen_range(0..12);
        let k: u16 = rng.gen_range(0..200);
        let v: u16 = rng.gen_range(0..1000);
        let us: u64 = rng.gen_range(1..3_000_000);
        match roll {
            0..=7 => {
                let (key, value) = (kname(k), vname(k, v, case.value_size));
                db.clock().advance_to(now);
                let mut batch = noblsm::WriteBatch::new();
                batch.put(&key, &value);
                now = db
                    .write(&noblsm::WriteOptions::default(), batch)
                    .expect("live put cannot fail");
                history.entry(key.clone()).or_default().push(value.clone());
                model.insert(key, Some(value));
            }
            8 | 9 => {
                let key = kname(k);
                let started = now;
                now = db.delete(now, &key).expect("live delete cannot fail");
                deletes.entry(key.clone()).or_default().push(started);
                model.insert(key, None);
            }
            10 => {
                now = db.flush(now).expect("live flush cannot fail");
                let snapshot: HashMap<Vec<u8>, Vec<u8>> =
                    model.iter().filter_map(|(k, v)| v.clone().map(|v| (k.clone(), v))).collect();
                acks.push((now, snapshot));
            }
            _ => {
                now += Nanos::from_micros(us);
                db.tick(now).expect("live tick cannot fail");
            }
        }
        applied += 1;
    }
    let final_stats = db.stats().clone();
    drop(db);
    PreparedRun {
        opts,
        history,
        deletes,
        acks,
        end: now,
        log,
        final_stats,
        windows: fs.commit_windows(),
        journal_broken: fs.journal_broken(),
        ops_applied: applied,
        trace,
        fs,
    }
}

/// How a crash point was validated, with everything needed to audit the
/// verdict.
#[derive(Debug, Clone)]
pub struct CaseResult {
    /// Workload seed.
    pub seed: u64,
    /// Configuration selector.
    pub config: usize,
    /// Requested crash point (per-mille of run).
    pub crash_pm: u32,
    /// Actual crash instant after optional phase snapping.
    pub crash_at: Nanos,
    /// Virtual end of the run.
    pub run_end: Nanos,
    /// Whether the case carried a fault plan at all.
    pub faulted_plan: bool,
    /// Injections whose command predates the crash.
    pub injections: Vec<Injection>,
    /// Durable-acked pairs expected to survive this crash point.
    pub acked_pairs: usize,
    /// Acked pairs missing or rolled back after recovery.
    pub lost_acked: usize,
    /// Recovered values never written by the application.
    pub undetected_values: usize,
    /// Keys recovered.
    pub recovered_keys: usize,
    /// First open failed and the repair path was engaged.
    pub repaired: bool,
    /// Error text of the first open, if it failed.
    pub open_error: Option<String>,
    /// Recovery ultimately failed even after repair.
    pub recovery_failed: Option<String>,
    /// Engine invariant check failure after recovery, if any.
    pub invariant_error: Option<String>,
    /// WAL corruption detections during recovery (open stats or repair).
    pub wal_corruptions_detected: u64,
    /// WAL bytes dropped behind damage or torn tails.
    pub wal_bytes_dropped: u64,
    /// WAL batches replayed.
    pub wal_records_recovered: u64,
    /// Table files repair had to discard as unparseable.
    pub tables_skipped: u64,
    /// Ordered-mode contract violations visible in the crash view.
    pub ordered_violations: u64,
    /// The journal chain was severed before the crash instant.
    pub journal_broken: bool,
    /// Shadow SSTables still held at end of run (NobLSM accounting).
    pub shadow_files: u64,
    /// Shadow SSTables reclaimed during the run.
    pub reclaimed_files: u64,
    /// Any acked loss is explained by pre-crash injections.
    pub explained: bool,
    /// Overall verdict.
    pub pass: bool,
}

/// Snaps `raw` to the latest commit-phase boundary at or before it, if
/// any; otherwise returns `raw`.
fn snap_to_phase(windows: &[nob_ext4::CommitWindow], raw: Nanos) -> Nanos {
    let mut best: Option<Nanos> = None;
    for w in windows {
        for b in [w.start, w.data_done, w.journal_done, w.end] {
            if b <= raw && best.is_none_or(|x| b > x) {
                best = Some(b);
            }
        }
    }
    best.unwrap_or(raw)
}

/// Reads the full recovered state; an `Err` means the read path itself
/// detected corruption.
fn dump(db: &mut Db, now: Nanos) -> noblsm::Result<HashMap<Vec<u8>, Vec<u8>>> {
    let mut out = HashMap::new();
    let mut it = db.iter_at(now)?;
    it.seek_to_first()?;
    while it.valid() {
        out.insert(it.key().to_vec(), it.value().to_vec());
        it.next()?;
    }
    Ok(out)
}

/// Opens + sanity-checks + dumps a recovered database in one step.
fn try_recover(view: &Ext4Fs, opts: &Options, at: Nanos) -> noblsm::Result<Recovered> {
    let mut db = Db::open(view.clone(), DB_DIR, opts.clone(), at)?;
    let inv = db.check_invariants().err().map(|e| e.to_string());
    let got = dump(&mut db, at)?;
    Ok((db.stats().clone(), inv, got))
}

/// Cuts power at the case's crash point and validates recovery.
pub fn validate_crash(run: &PreparedRun, crash_pm: u32, snap: bool) -> CaseResult {
    let raw = Nanos::from_nanos((run.end.as_nanos() as u128 * crash_pm as u128 / 1000) as u64);
    let crash_at = if snap { snap_to_phase(&run.windows, raw) } else { raw };
    let view = run.fs.crashed_view(crash_at);
    let ordered_violations = view.stats().ordered_violations;
    let injections: Vec<Injection> = run
        .log
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .iter()
        .filter(|i| i.at <= crash_at)
        .copied()
        .collect();
    let journal_broken = run.journal_broken.is_some_and(|b| b <= crash_at);

    // Recovery: the normal open path first; any failure engages repair,
    // exactly as an operator would.
    let mut repaired = false;
    let mut open_error = None;
    let mut recovery_failed = None;
    let mut tables_skipped = 0u64;
    let mut wal_corruptions = 0u64;
    let mut wal_dropped = 0u64;
    let mut wal_recovered = 0u64;
    let mut invariant_error = None;
    let mut got: HashMap<Vec<u8>, Vec<u8>> = HashMap::new();
    match try_recover(&view, &run.opts, crash_at) {
        Ok((stats, inv, state)) => {
            wal_corruptions = stats.wal_corruptions_detected;
            wal_dropped = stats.wal_bytes_dropped;
            wal_recovered = stats.wal_records_recovered;
            invariant_error = inv;
            got = state;
        }
        Err(first) => {
            open_error = Some(first.to_string());
            repaired = true;
            match Db::repair_with_report(&view, DB_DIR, &run.opts, crash_at) {
                Ok((t, report)) => {
                    tables_skipped = report.tables_skipped;
                    wal_corruptions = report.wal_corruptions_detected;
                    wal_dropped = report.wal_bytes_dropped;
                    wal_recovered = report.wal_records_recovered;
                    match try_recover(&view, &run.opts, t) {
                        Ok((_, inv, state)) => {
                            invariant_error = inv;
                            got = state;
                        }
                        Err(e) => recovery_failed = Some(e.to_string()),
                    }
                }
                Err(e) => recovery_failed = Some(e.to_string()),
            }
        }
    }

    // The acknowledged-durable state as of the cut: the last flush that
    // completed before it.
    let empty = HashMap::new();
    let (ack_t, acked): (Nanos, &HashMap<Vec<u8>, Vec<u8>>) = run
        .acks
        .iter()
        .rev()
        .find(|(t, _)| *t <= crash_at)
        .map_or((Nanos::ZERO, &empty), |(t, s)| (*t, s));

    // Invariant A — no fabricated data, ever: each recovered value must
    // have been written by the application for that key.
    let mut undetected_values = 0usize;
    for (k, v) in &got {
        let written = run.history.get(k).is_some_and(|vs| vs.iter().any(|w| w == v));
        if !written {
            undetected_values += 1;
        }
    }

    // Invariant B — durability: every acked pair survives, as itself or
    // as a later legitimately written version. A pair the application
    // itself deleted between the ack and the cut may legitimately be
    // gone (its tombstone recovered).
    let mut lost_acked = 0usize;
    for (k, v) in acked {
        let deleted_after_ack =
            run.deletes.get(k).is_some_and(|ts| ts.iter().any(|&t| t >= ack_t && t <= crash_at));
        match got.get(k) {
            Some(r) if r == v => {}
            Some(r) if run.history.get(k).is_some_and(|vs| vs.iter().any(|w| w == r)) => {}
            None if deleted_after_ack => {}
            _ => lost_acked += 1,
        }
    }

    let explained = !injections.is_empty();
    let pass = recovery_failed.is_none()
        && invariant_error.is_none()
        && undetected_values == 0
        && (lost_acked == 0 || explained);

    CaseResult {
        seed: 0, // stamped by the caller, which knows the case identity
        config: 0,
        crash_pm,
        crash_at,
        run_end: run.end,
        faulted_plan: false,
        injections,
        acked_pairs: acked.len(),
        lost_acked,
        undetected_values,
        recovered_keys: got.len(),
        repaired,
        open_error,
        recovery_failed,
        invariant_error,
        wal_corruptions_detected: wal_corruptions,
        wal_bytes_dropped: wal_dropped,
        wal_records_recovered: wal_recovered,
        tables_skipped,
        ordered_violations,
        journal_broken,
        shadow_files: run.final_stats.shadow_files,
        reclaimed_files: run.final_stats.reclaimed_files,
        explained,
        pass,
    }
}

/// Runs one complete case end to end.
pub fn run_case(case: &ChaosCase) -> CaseResult {
    let run = prepare_run(case);
    let mut r = validate_crash(&run, case.crash_pm, case.snap_to_commit_phase);
    r.seed = case.seed;
    r.config = case.config;
    r.faulted_plan = !case.plan.is_none();
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultKind;

    #[test]
    fn faultless_mid_crash_passes_durability() {
        for config in 0..CONFIGS {
            let case = ChaosCase { ops: 80, ..ChaosCase::new(11, config) };
            let r = run_case(&case);
            assert!(r.pass, "config {} failed: {r:?}", config_name(config));
            assert_eq!(r.undetected_values, 0);
            assert_eq!(r.lost_acked, 0, "pure power-cut may not lose acked data");
        }
    }

    #[test]
    fn faultless_end_crash_recovers_everything_acked() {
        let mut case = ChaosCase::new(3, 1);
        case.crash_pm = 1000;
        case.ops = 100;
        let r = run_case(&case);
        assert!(r.pass, "{r:?}");
        assert!(r.recovered_keys > 0, "a 100-op run must leave durable data");
    }

    #[test]
    fn seeded_faults_never_cause_silent_loss() {
        for seed in [5u64, 6, 7] {
            let mut case = ChaosCase::new(seed, 1);
            case.ops = 100;
            case.crash_pm = 900;
            case.plan = FaultPlan::seeded(seed);
            let r = run_case(&case);
            assert!(r.pass, "seed {seed}: {r:?}");
            assert_eq!(r.undetected_values, 0, "seed {seed}: fabricated data recovered");
            if r.lost_acked > 0 {
                assert!(r.explained, "seed {seed}: loss with empty injection log");
            }
        }
    }

    #[test]
    fn scheduled_dropped_flush_is_logged_and_explained() {
        let mut case = ChaosCase::new(9, 0);
        case.ops = 100;
        case.crash_pm = 1000;
        // Drop the first few FLUSHes outright: any durability ack in that
        // span is a device lie.
        case.plan = FaultPlan::none()
            .with_scheduled(0, FaultKind::DroppedFlush)
            .with_scheduled(1, FaultKind::DroppedFlush)
            .with_scheduled(2, FaultKind::DroppedFlush);
        let r = run_case(&case);
        assert!(!r.injections.is_empty(), "scheduled flush faults must fire");
        assert!(r.pass, "{r:?}");
    }

    #[test]
    fn phase_snapped_crash_points_land_on_boundaries() {
        let case = ChaosCase { snap_to_commit_phase: true, ..ChaosCase::new(21, 0) };
        let run = prepare_run(&case);
        assert!(!run.windows.is_empty(), "a run with flushes must log commit windows");
        let r = validate_crash(&run, 700, true);
        let on_boundary = run
            .windows
            .iter()
            .any(|w| [w.start, w.data_done, w.journal_done, w.end].contains(&r.crash_at));
        assert!(on_boundary || r.crash_at == Nanos::ZERO, "crash_at {:?}", r.crash_at);
        assert!(r.pass, "{r:?}");
    }

    #[test]
    fn fixed_case_is_bit_for_bit_reproducible() {
        let mut case = ChaosCase::new(33, 3);
        case.plan = FaultPlan::seeded(33);
        case.ops = 90;
        let a = run_case(&case);
        let b = run_case(&case);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }
}
