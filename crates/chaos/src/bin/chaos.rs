//! `chaos` — crash/fault sweep campaigns over the simulated stack.
//!
//! ```text
//! chaos smoke                         CI-sized sweep (24 cases), JSON to stdout
//! chaos sweep [--seeds N] [--crash-points M] [--ops K]
//!             [--profile power_cut|device_lies|mixed] [--snap] [--out PATH]
//!                                     full sweep (default 200 cases)
//! chaos case --seed S [--config 0..3] [--crash-pm P] [--ops K]
//!            [--fault-seed F] [--snap]
//!                                     one case, verbose JSON
//! chaos failover [--full] [--seeds N] [--kill-points M] [--ops K] [--out PATH]
//!                                     leader-kill replication sweep
//! ```
//!
//! Exit status is non-zero if any case fails its invariants.

use std::process::ExitCode;

use nob_chaos::campaign::{case_json, run_campaign, CampaignSpec, FaultProfile};
use nob_chaos::{run_case, run_failover_campaign, ChaosCase, FailoverSpec, FaultPlan, CONFIGS};

fn usage() -> ExitCode {
    eprintln!(
        "usage: chaos smoke\n       chaos sweep [--seeds N] [--crash-points M] [--ops K] \
         [--profile power_cut|device_lies|mixed] [--snap]\n       chaos case --seed S \
         [--config 0..{}] [--crash-pm P] [--ops K] [--fault-seed F] [--snap]\n       \
         chaos failover [--full] [--seeds N] [--kill-points M] [--ops K] [--out PATH]",
        CONFIGS - 1
    );
    ExitCode::from(2)
}

/// Pulls `--name value` out of the argument list.
fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
}

fn flag_present(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn parse_u64(args: &[String], name: &str, default: u64) -> Result<u64, ExitCode> {
    match flag_value(args, name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| {
            eprintln!("chaos: {name} expects an integer, got {v:?}");
            ExitCode::from(2)
        }),
    }
}

fn run_sweep(mut spec: CampaignSpec, args: &[String]) -> Result<ExitCode, ExitCode> {
    let seeds = parse_u64(args, "--seeds", spec.seeds.len() as u64)?;
    let points = parse_u64(args, "--crash-points", spec.crash_points_pm.len() as u64)?;
    spec.ops = parse_u64(args, "--ops", spec.ops as u64)? as usize;
    spec.seeds = (1..=seeds.max(1)).collect();
    let m = points.max(1) as u32;
    spec.crash_points_pm = (1..=m).map(|i| i * 1000 / m).collect();
    spec.snap_to_commit_phase = flag_present(args, "--snap");
    if let Some(p) = flag_value(args, "--profile") {
        spec.profile = FaultProfile::parse(&p).ok_or_else(|| {
            eprintln!("chaos: unknown profile {p:?}");
            ExitCode::from(2)
        })?;
    }
    let result = run_campaign(&spec);
    if let Some(path) = flag_value(args, "--out") {
        if let Some(dir) = std::path::Path::new(&path).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        if let Err(e) = std::fs::write(&path, result.to_json()) {
            eprintln!("chaos: cannot write {path}: {e}");
            return Err(ExitCode::FAILURE);
        }
        eprintln!("chaos: wrote {path}");
    } else {
        print!("{}", result.to_json());
    }
    eprintln!(
        "chaos: {} cases, {} passed, {} failed, {} undetected values, {} unexplained losses",
        result.results.len(),
        result.passed(),
        result.failed(),
        result.undetected_total(),
        result.unexplained_losses()
    );
    Ok(if result.failed() == 0 { ExitCode::SUCCESS } else { ExitCode::FAILURE })
}

fn run_one(args: &[String]) -> Result<ExitCode, ExitCode> {
    let Some(seed) = flag_value(args, "--seed") else {
        eprintln!("chaos case: --seed is required");
        return Err(ExitCode::from(2));
    };
    let seed: u64 = seed.parse().map_err(|_| {
        eprintln!("chaos: --seed expects an integer");
        ExitCode::from(2)
    })?;
    let config = parse_u64(args, "--config", 1)? as usize % CONFIGS;
    let mut case = ChaosCase::new(seed, config);
    case.crash_pm = parse_u64(args, "--crash-pm", 500)? as u32;
    case.ops = parse_u64(args, "--ops", 120)? as usize;
    case.snap_to_commit_phase = flag_present(args, "--snap");
    if let Some(f) = flag_value(args, "--fault-seed") {
        let f: u64 = f.parse().map_err(|_| {
            eprintln!("chaos: --fault-seed expects an integer");
            ExitCode::from(2)
        })?;
        case.plan = FaultPlan::seeded(f);
    }
    let r = run_case(&case);
    println!("{}", case_json(&r, ""));
    Ok(if r.pass { ExitCode::SUCCESS } else { ExitCode::FAILURE })
}

fn run_failover(args: &[String]) -> Result<ExitCode, ExitCode> {
    let mut spec =
        if flag_present(args, "--full") { FailoverSpec::full() } else { FailoverSpec::smoke() };
    let seeds = parse_u64(args, "--seeds", spec.seeds.len() as u64)?;
    spec.seeds = (1..=seeds.max(1)).collect();
    let points = parse_u64(args, "--kill-points", spec.kill_points_pm.len() as u64)?;
    let m = points.max(1) as u32;
    spec.kill_points_pm = (1..=m).map(|i| i * 1000 / m).collect();
    spec.ops = parse_u64(args, "--ops", spec.ops as u64)? as usize;
    let result = run_failover_campaign(&spec);
    if let Some(path) = flag_value(args, "--out") {
        if let Some(dir) = std::path::Path::new(&path).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        if let Err(e) = std::fs::write(&path, result.to_json()) {
            eprintln!("chaos: cannot write {path}: {e}");
            return Err(ExitCode::FAILURE);
        }
        eprintln!("chaos: wrote {path}");
    } else {
        print!("{}", result.to_json());
    }
    eprintln!(
        "chaos failover: {} cases, {} passed, {} failed",
        result.results.len(),
        result.passed(),
        result.failed()
    );
    Ok(if result.failed() == 0 { ExitCode::SUCCESS } else { ExitCode::FAILURE })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { return usage() };
    let rest = &args[1..];
    let out = match cmd.as_str() {
        "smoke" => run_sweep(CampaignSpec::smoke(), rest),
        "sweep" => run_sweep(CampaignSpec::full(), rest),
        "case" => run_one(rest),
        "failover" => run_failover(rest),
        _ => return usage(),
    };
    match out {
        Ok(code) | Err(code) => code,
    }
}
