//! Workspace umbrella crate: integration tests and examples live here.
pub use nob_store;
pub use noblsm;
