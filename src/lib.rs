//! Workspace umbrella crate: integration tests and examples live here.
pub use noblsm;
